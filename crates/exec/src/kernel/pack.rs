//! Panel packing: contiguous micro-panel operands for the register kernels.
//!
//! The parallel executor's tasks stream `A` row-panels and `B`
//! column-panels out of block-major [`BlockMatrix`] storage. Before the
//! `k` loop, each task copies the panels it is about to reuse into a
//! thread-local scratch arena, laid out exactly in the order the
//! [`MR`]`×`[`NR`] micro-kernels consume them:
//!
//! * `A` panels: per local block row, `⌈q/MR⌉` micro-panels of `MR`
//!   values per `k` step (`[ip][k][r]`, rows past `q` zero-padded);
//! * `B` panels: per local block column, `⌈q/NR⌉` micro-panels of `NR`
//!   values per `k` step (`[jp][k][c]`, columns past `q` zero-padded).
//!
//! This materializes the Maximum Reuse residency pattern — a register
//! tile of `C`, a sliver of `A`, a sliver of `B` — in actual memory
//! order: the micro-kernel's entire `k` loop reads two forward-moving
//! contiguous streams. Padding is multiplied by zero only in lanes that
//! are never written back, so it cannot perturb results.

use super::{MR, NR};
use crate::matrix::BlockMatrix;
use std::cell::RefCell;

/// Thread-local packing scratch, reused across a task's `k` panels and
/// across tasks run by the same worker thread.
pub struct PackArena {
    /// Packed `A` row-panel buffer.
    pub a: Vec<f64>,
    /// Packed `B` column-panel buffer.
    pub b: Vec<f64>,
}

thread_local! {
    static ARENA: RefCell<PackArena> =
        const { RefCell::new(PackArena { a: Vec::new(), b: Vec::new() }) };
}

/// Run `f` with the current thread's packing arena.
pub fn with_arena<R>(f: impl FnOnce(&mut PackArena) -> R) -> R {
    ARENA.with(|cell| f(&mut cell.borrow_mut()))
}

/// Packed size of one block row's `A` micro-panels for a depth-`kc` panel.
pub fn a_panel_stride(q: usize, kc: usize) -> usize {
    q.div_ceil(MR) * kc * MR
}

/// Packed size of one block column's `B` micro-panels for a depth-`kc` panel.
pub fn b_panel_stride(q: usize, kc: usize) -> usize {
    q.div_ceil(NR) * kc * NR
}

/// Pack the `A` row-panel `A[i0..i0+th, k0..k0+kb]` into `dst`.
///
/// Layout: block row `bi`, then micro-panel `ip`, then `k` ascending over
/// the whole `kb·q`-deep panel, then `MR` row values (zero-padded past
/// `q`). `dst` is resized to `th · `[`a_panel_stride`]` elements.
pub fn pack_a_panel(dst: &mut Vec<f64>, a: &BlockMatrix, i0: u32, th: u32, k0: u32, kb: u32) {
    let q = a.q();
    let kc = kb as usize * q;
    let n_ip = q.div_ceil(MR);
    dst.clear();
    dst.resize(th as usize * a_panel_stride(q, kc), 0.0);
    crate::metrics::pack_bytes().add(dst.len() as u64 * 8);
    let mut off = 0;
    for bi in 0..th {
        for ip in 0..n_ip {
            for kblk in 0..kb {
                let blk = a.block(i0 + bi, k0 + kblk);
                for kk in 0..q {
                    for r in 0..MR {
                        let row = ip * MR + r;
                        if row < q {
                            dst[off] = blk[row * q + kk];
                        }
                        off += 1;
                    }
                }
            }
        }
    }
}

/// Pack the `B` column-panel `B[k0..k0+kb, j0..j0+tw]` into `dst`.
///
/// Layout: block column `bj`, then micro-panel `jp`, then `k` ascending
/// over the whole `kb·q`-deep panel, then `NR` column values
/// (zero-padded past `q`). `dst` is resized to `tw · `[`b_panel_stride`]`
/// elements.
pub fn pack_b_panel(dst: &mut Vec<f64>, b: &BlockMatrix, j0: u32, tw: u32, k0: u32, kb: u32) {
    let q = b.q();
    let kc = kb as usize * q;
    let n_jp = q.div_ceil(NR);
    dst.clear();
    dst.resize(tw as usize * b_panel_stride(q, kc), 0.0);
    crate::metrics::pack_bytes().add(dst.len() as u64 * 8);
    let mut off = 0;
    for bj in 0..tw {
        for jp in 0..n_jp {
            for kblk in 0..kb {
                let blk = b.block(k0 + kblk, j0 + bj);
                for kk in 0..q {
                    let row = &blk[kk * q..(kk + 1) * q];
                    for c in 0..NR {
                        let col = jp * NR + c;
                        if col < q {
                            dst[off] = row[col];
                        }
                        off += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_panel_layout_round_trips() {
        // 1 block row, 2 k blocks, q = 5 (ragged: n_ip = 1, rows 5..8 padded).
        let q = 5;
        let a = BlockMatrix::from_fn(1, 2, q, |i, j| (i * 100 + j) as f64);
        let mut dst = Vec::new();
        pack_a_panel(&mut dst, &a, 0, 1, 0, 2);
        let kc = 2 * q;
        assert_eq!(dst.len(), a_panel_stride(q, kc));
        // Element (row r, global k) lives at [k][r]; global k spans both blocks.
        for k in 0..kc {
            for r in 0..MR {
                let want = if r < q { (r * 100 + k) as f64 } else { 0.0 };
                assert_eq!(dst[k * MR + r], want, "k={k} r={r}");
            }
        }
    }

    #[test]
    fn b_panel_layout_round_trips() {
        // 2 k blocks, 1 block col, q = 6 (n_jp = 2, cols 4..8 of panel 1 ragged).
        let q = 6;
        let b = BlockMatrix::from_fn(2, 1, q, |i, j| (i * 10 + j) as f64);
        let mut dst = Vec::new();
        pack_b_panel(&mut dst, &b, 0, 1, 0, 2);
        let kc = 2 * q;
        assert_eq!(dst.len(), b_panel_stride(q, kc));
        for jp in 0..q.div_ceil(NR) {
            for k in 0..kc {
                for c in 0..NR {
                    let col = jp * NR + c;
                    let want = if col < q { (k * 10 + col) as f64 } else { 0.0 };
                    assert_eq!(dst[jp * kc * NR + k * NR + c], want, "jp={jp} k={k} c={c}");
                }
            }
        }
    }

    #[test]
    fn arena_is_reused() {
        let cap = with_arena(|ar| {
            ar.a.resize(1024, 0.0);
            ar.a.capacity()
        });
        let cap2 = with_arena(|ar| ar.a.capacity());
        assert_eq!(cap, cap2, "same thread sees the same arena");
    }
}
