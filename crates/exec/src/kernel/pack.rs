//! Panel packing: contiguous micro-panel operands for the register kernels.
//!
//! The parallel executor's tasks stream `A` row-panels and `B`
//! column-panels out of block-major [`BlockMatrixOf`] storage. The
//! 5-loop macro-kernel copies the panels it is about to reuse into a
//! thread-local scratch arena, laid out exactly in the order the
//! `MR×NR` micro-kernels consume them:
//!
//! * `A` panels: per local block row, `⌈q/MR⌉` micro-panels of `MR`
//!   values per `k` step (`[ip][k][r]`, rows past `q` zero-padded);
//! * `B` panels: per local block column, `⌈q/NR⌉` micro-panels of `NR`
//!   values per `k` step (`[jp][k][c]`, columns past `q` zero-padded).
//!
//! This materializes the Maximum Reuse residency pattern — a register
//! tile of `C`, a sliver of `A`, a sliver of `B` — in actual memory
//! order: the micro-kernel's entire `k` loop reads two forward-moving
//! contiguous streams. Padding is multiplied by zero only in lanes that
//! are never written back, so it cannot perturb results.
//!
//! Reused arena buffers are **not** re-zeroed: every slot below the
//! packed length, padding lanes included, is written explicitly, so the
//! buffers only grow (`resize` fires solely when a larger panel arrives)
//! and repacking costs one pass instead of a memset plus a pass.

use super::elem::Element;
use crate::matrix::BlockMatrixOf;

/// Thread-local packing scratch, reused across a task's `k` panels and
/// across tasks run by the same worker thread. One arena exists per
/// element type per thread (see [`Element::with_arena`]).
pub struct PackArena<T = f64> {
    /// Packed `A` row-panel buffer.
    pub a: Vec<T>,
    /// Packed `B` column-panel buffer.
    pub b: Vec<T>,
}

impl<T> PackArena<T> {
    /// An empty arena (the per-type thread-local slots start here).
    pub const fn new() -> PackArena<T> {
        PackArena { a: Vec::new(), b: Vec::new() }
    }
}

impl<T> Default for PackArena<T> {
    fn default() -> Self {
        PackArena::new()
    }
}

/// Run `f` with the current thread's packing arena for element type `T`.
pub fn with_arena<T: Element, R>(f: impl FnOnce(&mut PackArena<T>) -> R) -> R {
    T::with_arena(f)
}

/// Packed size of one block row's `A` micro-panels for a depth-`kc` panel.
pub fn a_panel_stride<T: Element>(q: usize, kc: usize) -> usize {
    q.div_ceil(T::MR) * kc * T::MR
}

/// Packed size of one block column's `B` micro-panels for a depth-`kc` panel.
pub fn b_panel_stride<T: Element>(q: usize, kc: usize) -> usize {
    q.div_ceil(T::NR) * kc * T::NR
}

/// Size `dst` for `len` packed elements without re-zeroing retained
/// capacity: grow (zero-filling only the new tail) or truncate, never
/// clear-and-refill. Callers overwrite every slot below `len`.
fn size_for_pack<T: Element>(dst: &mut Vec<T>, len: usize) {
    if dst.len() < len {
        dst.resize(len, T::ZERO);
    } else {
        dst.truncate(len);
    }
    crate::metrics::pack_bytes().add((len * std::mem::size_of::<T>()) as u64);
}

/// Pack the `A` row-panel `A[i0..i0+th, k0..k0+kb]` into `dst`.
///
/// Layout: block row `bi`, then micro-panel `ip`, then `k` ascending over
/// the whole `kb·q`-deep panel, then `MR` row values (zero-padded past
/// `q`). `dst` is sized to `th · `[`a_panel_stride`]` elements. While one
/// source block streams out, the next block's rows are prefetched.
pub fn pack_a_panel<T: Element>(
    dst: &mut Vec<T>,
    a: &BlockMatrixOf<T>,
    i0: u32,
    th: u32,
    k0: u32,
    kb: u32,
) {
    let q = a.q();
    let kc = kb as usize * q;
    let mr = T::MR;
    let n_ip = q.div_ceil(mr);
    let len = th as usize * a_panel_stride::<T>(q, kc);
    size_for_pack(dst, len);
    let mut off = 0;
    for bi in 0..th {
        for ip in 0..n_ip {
            let rows = ip * mr..((ip + 1) * mr).min(q);
            for kblk in 0..kb {
                let blk = a.block(i0 + bi, k0 + kblk);
                if kblk + 1 < kb {
                    let next = a.block(i0 + bi, k0 + kblk + 1);
                    for row in rows.clone() {
                        super::prefetch_read(&next[row * q]);
                    }
                }
                for kk in 0..q {
                    for r in 0..mr {
                        let row = ip * mr + r;
                        dst[off] = if row < q { blk[row * q + kk] } else { T::ZERO };
                        off += 1;
                    }
                }
            }
        }
    }
    debug_assert_eq!(off, len, "packed A panel length must match tile geometry");
}

/// Pack the `B` column-panel `B[k0..k0+kb, j0..j0+tw]` into `dst`.
///
/// Layout: block column `bj`, then micro-panel `jp`, then `k` ascending
/// over the whole `kb·q`-deep panel, then `NR` column values
/// (zero-padded past `q`). `dst` is sized to `tw · `[`b_panel_stride`]`
/// elements. While one source block streams out, the next block's first
/// rows are prefetched.
pub fn pack_b_panel<T: Element>(
    dst: &mut Vec<T>,
    b: &BlockMatrixOf<T>,
    j0: u32,
    tw: u32,
    k0: u32,
    kb: u32,
) {
    let q = b.q();
    let kc = kb as usize * q;
    let nr = T::NR;
    let n_jp = q.div_ceil(nr);
    let len = tw as usize * b_panel_stride::<T>(q, kc);
    size_for_pack(dst, len);
    let mut off = 0;
    for bj in 0..tw {
        for jp in 0..n_jp {
            for kblk in 0..kb {
                let blk = b.block(k0 + kblk, j0 + bj);
                if kblk + 1 < kb {
                    let next = b.block(k0 + kblk + 1, j0 + bj);
                    for kk in 0..q.min(4) {
                        super::prefetch_read(&next[kk * q + jp * nr]);
                    }
                }
                for kk in 0..q {
                    let row = &blk[kk * q..(kk + 1) * q];
                    for c in 0..nr {
                        let col = jp * nr + c;
                        dst[off] = if col < q { row[col] } else { T::ZERO };
                        off += 1;
                    }
                }
            }
        }
    }
    debug_assert_eq!(off, len, "packed B panel length must match tile geometry");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::BlockMatrix;

    const MR: usize = <f64 as Element>::MR;
    const NR: usize = <f64 as Element>::NR;

    #[test]
    fn a_panel_layout_round_trips() {
        // 1 block row, 2 k blocks, q = 5 (ragged: n_ip = 1, rows 5..6 padded).
        let q = 5;
        let a = BlockMatrix::from_fn(1, 2, q, |i, j| (i * 100 + j) as f64);
        let mut dst = Vec::new();
        pack_a_panel(&mut dst, &a, 0, 1, 0, 2);
        let kc = 2 * q;
        assert_eq!(dst.len(), a_panel_stride::<f64>(q, kc));
        // Element (row r, global k) lives at [k][r]; global k spans both blocks.
        for k in 0..kc {
            for r in 0..MR {
                let want = if r < q { (r * 100 + k) as f64 } else { 0.0 };
                assert_eq!(dst[k * MR + r], want, "k={k} r={r}");
            }
        }
    }

    #[test]
    fn b_panel_layout_round_trips() {
        // 2 k blocks, 1 block col, q = 6 (n_jp = 1, cols 6..8 of the panel padded).
        let q = 6;
        let b = BlockMatrix::from_fn(2, 1, q, |i, j| (i * 10 + j) as f64);
        let mut dst = Vec::new();
        pack_b_panel(&mut dst, &b, 0, 1, 0, 2);
        let kc = 2 * q;
        assert_eq!(dst.len(), b_panel_stride::<f64>(q, kc));
        for jp in 0..q.div_ceil(NR) {
            for k in 0..kc {
                for c in 0..NR {
                    let col = jp * NR + c;
                    let want = if col < q { (k * 10 + col) as f64 } else { 0.0 };
                    assert_eq!(dst[jp * kc * NR + k * NR + c], want, "jp={jp} k={k} c={c}");
                }
            }
        }
    }

    /// Shrinking repacks leave no stale tail and growing repacks pad
    /// correctly — the grow-only sizing never exposes old data because
    /// every slot below the packed length is overwritten.
    #[test]
    fn repacking_after_shrink_holds_no_stale_data() {
        let big = BlockMatrix::from_fn(1, 2, 9, |i, j| (i * 50 + j) as f64 + 1.0);
        let small = BlockMatrix::from_fn(1, 1, 3, |i, j| -((i * 10 + j) as f64) - 1.0);
        let mut dst = Vec::new();
        pack_a_panel(&mut dst, &big, 0, 1, 0, 2);
        pack_a_panel(&mut dst, &small, 0, 1, 0, 1);
        assert_eq!(dst.len(), a_panel_stride::<f64>(3, 3));
        // q = 3 < MR: lanes 3..MR of each k group must be freshly zeroed,
        // not residue from the larger pack.
        for k in 0..3 {
            for r in 0..MR {
                let want = if r < 3 { -((r * 10 + k) as f64) - 1.0 } else { 0.0 };
                assert_eq!(dst[k * MR + r], want, "k={k} r={r}");
            }
        }
    }

    #[test]
    fn arena_is_reused() {
        let cap = with_arena::<f64, _>(|ar| {
            ar.a.resize(1024, 0.0);
            ar.a.capacity()
        });
        let cap2 = with_arena::<f64, _>(|ar| ar.a.capacity());
        assert_eq!(cap, cap2, "same thread sees the same arena");
    }
}
