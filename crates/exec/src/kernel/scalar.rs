//! Portable scalar fallback kernel.
//!
//! The original micro-kernel of this crate: a plain `i/k/j` triple loop
//! whose inner loop is a contiguous multiply-accumulate over a `C` row
//! and a `B` row that the compiler auto-vectorizes. Every
//! multiply-accumulate is an *unfused* multiply then add, per element in
//! ascending `k` order — the determinism contract the SIMD variants
//! mirror (with fused ops) on their side. Generic over the element type,
//! since unfused multiply+add needs nothing beyond `Add`/`Mul`.

use super::elem::Element;

/// `c += a × b` for row-major `q×q` blocks, scalar triple loop.
///
/// # Panics
/// Panics (via `debug_assert!` in debug builds and slice indexing
/// otherwise) if any slice is shorter than `q²`.
#[inline]
pub fn block_fma_scalar<T: Element>(c: &mut [T], a: &[T], b: &[T], q: usize) {
    debug_assert!(c.len() >= q * q && a.len() >= q * q && b.len() >= q * q);
    for i in 0..q {
        let c_row = &mut c[i * q..(i + 1) * q];
        let a_row = &a[i * q..(i + 1) * q];
        for k in 0..q {
            let aik = a_row[k];
            let b_row = &b[k * q..(k + 1) * q];
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv = *cv + aik * *bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::block_fma_reference;

    #[test]
    fn scalar_matches_reference() {
        for q in [1usize, 3, 8, 17] {
            let a: Vec<f64> = (0..q * q).map(|x| (x % 13) as f64 - 6.0).collect();
            let b: Vec<f64> = (0..q * q).map(|x| (x % 7) as f64 * 0.5).collect();
            let mut c1 = vec![1.0; q * q];
            let mut c2 = c1.clone();
            block_fma_scalar(&mut c1, &a, &b, q);
            block_fma_reference(&mut c2, &a, &b, q);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-9, "q={q}");
            }
        }
    }

    #[test]
    fn scalar_is_generic_over_f32() {
        let q = 5usize;
        let a: Vec<f32> = (0..q * q).map(|x| (x % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..q * q).map(|x| (x % 7) as f32 * 0.5).collect();
        let mut c1 = vec![1.0f32; q * q];
        let mut c2 = c1.clone();
        block_fma_scalar(&mut c1, &a, &b, q);
        block_fma_reference(&mut c2, &a, &b, q);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-4, "q={q}");
        }
    }
}
