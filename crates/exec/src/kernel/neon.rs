//! NEON register-blocked micro-kernels (aarch64).
//!
//! Same tile shapes as the AVX2 kernels — 6×8 for `f64`, 6×16 for `f32`
//! — but on 128-bit vectors: each `C` row is four `float64x2_t` (or
//! `float32x4_t`) registers, so the tile occupies 24 of the 32 vector
//! registers, leaving room for the four `B` vectors and the `A`
//! broadcast of each `k` step. Software prefetch pulls the packed
//! streams a few steps ahead, mirroring [`super::x86`].
//!
//! Rounding contract matches [`super::x86`]: one fused multiply-add per
//! element per `k` step, ascending `k`, so full tiles, edges, and every
//! executor path through the NEON variant agree bitwise.

use super::{edge_fused, prefetch_read};
use core::arch::aarch64::*;

/// Rows of `C` per register tile (both element types).
const MR: usize = 6;
/// `f64` columns per register tile (four 2-wide NEON registers).
const NR_F64: usize = 8;
/// `f32` columns per register tile (four 4-wide NEON registers).
const NR_F32: usize = 16;
/// How many `k` steps ahead the packed streams are prefetched.
const PF_AHEAD: usize = 8;

/// `C(6×8) += Apanel × Bpanel` on packed `f64` micro-panels.
///
/// Layout contract is identical to
/// [`micro_6x8_f64`](super::x86::micro_6x8_f64) on x86: `ap` holds `kc`
/// groups of 6 `A` values, `bp` holds `kc` groups of 8 `B` values, `c`
/// is a 6×8 tile with row stride `ldc`.
///
/// # Safety
/// `ap` must have at least `kc·6` elements, `bp` at least `kc·8`, and
/// the 6 rows of 8 elements at `c` (stride `ldc`) must be in bounds and
/// unaliased.
#[target_feature(enable = "neon")]
pub unsafe fn micro_6x8_f64(kc: usize, ap: *const f64, bp: *const f64, c: *mut f64, ldc: usize) {
    let mut acc = [[vdupq_n_f64(0.0); 4]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        for (s, lane) in row.iter_mut().enumerate() {
            *lane = vld1q_f64(c.add(r * ldc + 2 * s));
        }
    }
    for k in 0..kc {
        prefetch_read(bp.wrapping_add((k + PF_AHEAD) * NR_F64));
        prefetch_read(ap.wrapping_add((k + PF_AHEAD) * MR));
        let bk = bp.add(k * NR_F64);
        let bv = [vld1q_f64(bk), vld1q_f64(bk.add(2)), vld1q_f64(bk.add(4)), vld1q_f64(bk.add(6))];
        let ak = ap.add(k * MR);
        for (r, row) in acc.iter_mut().enumerate() {
            let av = vdupq_n_f64(*ak.add(r));
            for (s, lane) in row.iter_mut().enumerate() {
                *lane = vfmaq_f64(*lane, av, bv[s]);
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        for (s, lane) in row.iter().enumerate() {
            vst1q_f64(c.add(r * ldc + 2 * s), *lane);
        }
    }
}

/// `C(6×16) += Apanel × Bpanel` on packed `f32` micro-panels.
///
/// Same layout contract as [`micro_6x8_f64`] with `NR = 16`.
///
/// # Safety
/// `ap` must have at least `kc·6` elements, `bp` at least `kc·16`, and
/// the 6 rows of 16 elements at `c` (stride `ldc`) must be in bounds and
/// unaliased.
#[target_feature(enable = "neon")]
pub unsafe fn micro_6x16_f32(kc: usize, ap: *const f32, bp: *const f32, c: *mut f32, ldc: usize) {
    let mut acc = [[vdupq_n_f32(0.0); 4]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        for (s, lane) in row.iter_mut().enumerate() {
            *lane = vld1q_f32(c.add(r * ldc + 4 * s));
        }
    }
    for k in 0..kc {
        prefetch_read(bp.wrapping_add((k + PF_AHEAD) * NR_F32));
        prefetch_read(ap.wrapping_add((k + PF_AHEAD) * MR));
        let bk = bp.add(k * NR_F32);
        let bv = [vld1q_f32(bk), vld1q_f32(bk.add(4)), vld1q_f32(bk.add(8)), vld1q_f32(bk.add(12))];
        let ak = ap.add(k * MR);
        for (r, row) in acc.iter_mut().enumerate() {
            let av = vdupq_n_f32(*ak.add(r));
            for (s, lane) in row.iter_mut().enumerate() {
                *lane = vfmaq_f32(*lane, av, bv[s]);
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        for (s, lane) in row.iter().enumerate() {
            vst1q_f32(c.add(r * ldc + 4 * s), *lane);
        }
    }
}

/// `c += a × b` on unpacked row-major `q×q` `f64` blocks, register-blocked.
///
/// # Safety
/// Each slice must hold at least `q²` elements.
#[target_feature(enable = "neon")]
pub unsafe fn block_fma_neon(c: &mut [f64], a: &[f64], b: &[f64], q: usize) {
    debug_assert!(c.len() >= q * q && a.len() >= q * q && b.len() >= q * q);
    let cp = c.as_mut_ptr();
    let apn = a.as_ptr();
    let bpn = b.as_ptr();
    let mut ir = 0;
    while ir + MR <= q {
        let mut jr = 0;
        while jr + NR_F64 <= q {
            let ctile = cp.add(ir * q + jr);
            let mut acc = [[vdupq_n_f64(0.0); 4]; MR];
            for (r, row) in acc.iter_mut().enumerate() {
                for (s, lane) in row.iter_mut().enumerate() {
                    *lane = vld1q_f64(ctile.add(r * q + 2 * s));
                }
            }
            for k in 0..q {
                let bk = bpn.add(k * q + jr);
                let bv = [
                    vld1q_f64(bk),
                    vld1q_f64(bk.add(2)),
                    vld1q_f64(bk.add(4)),
                    vld1q_f64(bk.add(6)),
                ];
                for (r, row) in acc.iter_mut().enumerate() {
                    let av = vdupq_n_f64(*apn.add((ir + r) * q + k));
                    for (s, lane) in row.iter_mut().enumerate() {
                        *lane = vfmaq_f64(*lane, av, bv[s]);
                    }
                }
            }
            for (r, row) in acc.iter().enumerate() {
                for (s, lane) in row.iter().enumerate() {
                    vst1q_f64(ctile.add(r * q + 2 * s), *lane);
                }
            }
            jr += NR_F64;
        }
        if jr < q {
            edge_fused(c, a, b, q, (ir, MR, jr, q - jr));
        }
        ir += MR;
    }
    if ir < q {
        edge_fused(c, a, b, q, (ir, q - ir, 0, q));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::block_fma_reference;

    #[test]
    fn neon_block_kernel_matches_reference() {
        for q in [1usize, 4, 6, 7, 8, 9, 12, 14, 31, 32, 64] {
            let a: Vec<f64> = (0..q * q).map(|x| ((x * 37) % 23) as f64 - 11.0).collect();
            let b: Vec<f64> = (0..q * q).map(|x| ((x * 5) % 17) as f64 * 0.125).collect();
            let mut c1: Vec<f64> = (0..q * q).map(|x| x as f64 * 0.01).collect();
            let mut c2 = c1.clone();
            // SAFETY: NEON is baseline on aarch64; slices are q².
            unsafe { block_fma_neon(&mut c1, &a, &b, q) };
            block_fma_reference(&mut c2, &a, &b, q);
            for (i, (x, y)) in c1.iter().zip(&c2).enumerate() {
                assert!((x - y).abs() < 1e-9, "q={q} elem {i}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn packed_f32_micro_kernel_matches_fused_scalar() {
        let kc = 9usize;
        let a: Vec<f32> = (0..MR * kc).map(|x| ((x * 11) % 19) as f32 - 9.0).collect();
        let b: Vec<f32> = (0..kc * NR_F32).map(|x| ((x * 7) % 13) as f32 * 0.25).collect();
        let mut ap = vec![0.0f32; kc * MR];
        for k in 0..kc {
            for r in 0..MR {
                ap[k * MR + r] = a[r * kc + k];
            }
        }
        let mut c = vec![1.0f32; MR * NR_F32];
        let mut oracle = c.clone();
        // SAFETY: NEON is baseline on aarch64; buffers sized exactly.
        unsafe { micro_6x16_f32(kc, ap.as_ptr(), b.as_ptr(), c.as_mut_ptr(), NR_F32) };
        for r in 0..MR {
            for j in 0..NR_F32 {
                let mut acc = oracle[r * NR_F32 + j];
                for k in 0..kc {
                    acc = a[r * kc + k].mul_add(b[k * NR_F32 + j], acc);
                }
                oracle[r * NR_F32 + j] = acc;
            }
        }
        assert_eq!(c, oracle, "fused f32 vector lanes must equal fused scalar exactly");
    }
}
