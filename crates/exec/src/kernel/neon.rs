//! NEON register-blocked micro-kernels (aarch64).
//!
//! Same register tiling as the AVX2 kernels — an [`MR`]`×`[`NR`] tile of
//! `C` in accumulators — but on 128-bit vectors: each `C` row is a pair
//! of `float64x2_t` registers (16 accumulators of the 32 available), and
//! each `k` step issues two `B` loads, eight `A` broadcasts, and sixteen
//! fused multiply-adds.
//!
//! Rounding contract matches [`super::x86`]: one fused multiply-add per
//! element per `k` step, ascending `k`, so full tiles, edges, and every
//! executor path through the NEON variant agree bitwise.

use super::{edge_fused, MR, NR};
use core::arch::aarch64::*;

/// `C(MR×NR) += Apanel × Bpanel` on packed micro-panels.
///
/// Layout contract is identical to
/// [`micro_8x4_packed`](super::x86::micro_8x4_packed) on x86: `ap` holds
/// `kc` groups of [`MR`] `A` values, `bp` holds `kc` groups of [`NR`]
/// `B` values, `c` is an `MR×NR` tile with row stride `ldc`.
///
/// # Safety
/// `ap` must have at least `kc·MR` elements, `bp` at least `kc·NR`, and
/// the `MR` rows of `NR` elements at `c` (stride `ldc`) must be in
/// bounds and unaliased.
#[target_feature(enable = "neon")]
pub unsafe fn micro_8x4_packed(kc: usize, ap: *const f64, bp: *const f64, c: *mut f64, ldc: usize) {
    let mut lo = [vdupq_n_f64(0.0); MR];
    let mut hi = [vdupq_n_f64(0.0); MR];
    for r in 0..MR {
        lo[r] = vld1q_f64(c.add(r * ldc));
        hi[r] = vld1q_f64(c.add(r * ldc + 2));
    }
    for k in 0..kc {
        let b_lo = vld1q_f64(bp.add(k * NR));
        let b_hi = vld1q_f64(bp.add(k * NR + 2));
        let ak = ap.add(k * MR);
        for r in 0..MR {
            let av = vdupq_n_f64(*ak.add(r));
            lo[r] = vfmaq_f64(lo[r], av, b_lo);
            hi[r] = vfmaq_f64(hi[r], av, b_hi);
        }
    }
    for r in 0..MR {
        vst1q_f64(c.add(r * ldc), lo[r]);
        vst1q_f64(c.add(r * ldc + 2), hi[r]);
    }
}

/// `c += a × b` on unpacked row-major `q×q` blocks, register-blocked.
///
/// # Safety
/// Each slice must hold at least `q²` elements.
#[target_feature(enable = "neon")]
pub unsafe fn block_fma_neon(c: &mut [f64], a: &[f64], b: &[f64], q: usize) {
    debug_assert!(c.len() >= q * q && a.len() >= q * q && b.len() >= q * q);
    let cp = c.as_mut_ptr();
    let apn = a.as_ptr();
    let bpn = b.as_ptr();
    let mut ir = 0;
    while ir + MR <= q {
        let mut jr = 0;
        while jr + NR <= q {
            let ctile = cp.add(ir * q + jr);
            let mut lo = [vdupq_n_f64(0.0); MR];
            let mut hi = [vdupq_n_f64(0.0); MR];
            for r in 0..MR {
                lo[r] = vld1q_f64(ctile.add(r * q));
                hi[r] = vld1q_f64(ctile.add(r * q + 2));
            }
            for k in 0..q {
                let b_lo = vld1q_f64(bpn.add(k * q + jr));
                let b_hi = vld1q_f64(bpn.add(k * q + jr + 2));
                for r in 0..MR {
                    let av = vdupq_n_f64(*apn.add((ir + r) * q + k));
                    lo[r] = vfmaq_f64(lo[r], av, b_lo);
                    hi[r] = vfmaq_f64(hi[r], av, b_hi);
                }
            }
            for r in 0..MR {
                vst1q_f64(ctile.add(r * q), lo[r]);
                vst1q_f64(ctile.add(r * q + 2), hi[r]);
            }
            jr += NR;
        }
        if jr < q {
            edge_fused(c, a, b, q, (ir, MR, jr, q - jr));
        }
        ir += MR;
    }
    if ir < q {
        edge_fused(c, a, b, q, (ir, q - ir, 0, q));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::block_fma_reference;

    #[test]
    fn neon_block_kernel_matches_reference() {
        for q in [1usize, 4, 7, 8, 9, 12, 31, 32, 64] {
            let a: Vec<f64> = (0..q * q).map(|x| ((x * 37) % 23) as f64 - 11.0).collect();
            let b: Vec<f64> = (0..q * q).map(|x| ((x * 5) % 17) as f64 * 0.125).collect();
            let mut c1: Vec<f64> = (0..q * q).map(|x| x as f64 * 0.01).collect();
            let mut c2 = c1.clone();
            // SAFETY: NEON is baseline on aarch64; slices are q².
            unsafe { block_fma_neon(&mut c1, &a, &b, q) };
            block_fma_reference(&mut c2, &a, &b, q);
            for (i, (x, y)) in c1.iter().zip(&c2).enumerate() {
                assert!((x - y).abs() < 1e-9, "q={q} elem {i}: {x} vs {y}");
            }
        }
    }
}
