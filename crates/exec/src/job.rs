//! Reusable, cancellable job units around the parallel executors.
//!
//! The long-running `mmc serve` daemon schedules many concurrent
//! multiplies onto one shared worker pool, so each multiply must be a
//! *job*: something that can be started, observed (per-job span traces,
//! PR 7) and — crucially — cancelled without tearing down the pool.
//!
//! Cancellation is cooperative. A [`CancelToken`] is a cheap clonable
//! handle over a shared flag; the compute loops poll it at coarse,
//! allocation-free boundaries — the `jc` macro-loop of the packed
//! 5-loop path and the `k0` panel boundary of the blockwise path (and,
//! in `mmc-ooc`, the panel-stage boundary before each prefetch claim).
//! Polling at loop tops keeps the hot micro-kernel unchanged: a cancel
//! is observed within one macro-panel of work, which is milliseconds at
//! the shapes the server runs, while the steady-state overhead is one
//! relaxed atomic load per macro iteration.
//!
//! A cancelled [`crate::gemm_parallel_cancellable`] returns `None` and
//! leaves only its own (abandoned) output buffer behind; every worker
//! thread observes the flag independently, so the rayon pool is
//! reusable immediately.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared cooperative-cancellation flag for one in-flight job.
///
/// Clones share the same flag: hand one clone to the executor and keep
/// another on the control plane. Once cancelled, a token stays
/// cancelled — jobs are single-use, matching the serve scheduler's
/// one-token-per-request lifecycle.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, not-yet-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Has [`CancelToken::cancel`] been called on any clone?
    ///
    /// A relaxed load — the executors poll this on macro-loop
    /// boundaries where staleness of a few iterations is fine.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_clones_share_one_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled() && !u.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled() && u.is_cancelled());
        // Idempotent.
        t.cancel();
        assert!(u.is_cancelled());
    }

    #[test]
    fn default_token_starts_live() {
        assert!(!CancelToken::default().is_cancelled());
    }
}
