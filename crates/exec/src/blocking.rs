//! Analytic 5-loop blocking: `MC`/`KC`/`NC` derived from the cache model.
//!
//! The packed executor runs a BLIS-style 5-loop macro-kernel (see
//! [`crate::runner`]); this module decides, at dispatch time, how deep
//! each macro loop steps. The derivation applies the paper's Tradeoff
//! footprint constraint `α² + 2αβ ≤ C_S` (§3.3) — generalized to
//! non-square tiles by [`mmc_core::params::max_panel_depth`] — once per
//! cache level, innermost out:
//!
//! * `KC` — deepest `k` panel such that the `MR×NR` register tile plus a
//!   `MR×KC` `A` sliver and a `KC×NR` `B` sliver fit in (half of) L1;
//! * `MC` — tallest `A` block such that the resident `KC×NR` `B`
//!   micro-panel plus `MC×KC` `A` panel fit in (half of) L2;
//! * `NC` — widest `B` panel such that the resident `MC×KC` `A` panel
//!   plus `MC×NC` of `C` traffic fit in (half of) the shared cache.
//!
//! Half of each level is budgeted for the resident operands; the other
//! half absorbs the `C` streams, the source-side packing reads, and
//! conflict misses — the same spirit as the paper's LRU-50 declaration,
//! which tells algorithms about half the physical capacity and lets the
//! replacement policy use the rest as "kind of an automatic prefetching
//! buffer" (§4.2).
//!
//! Cache sizes come from `/sys/devices/system/cpu/cpu0/cache` with
//! conservative fallbacks, and the whole plan can be pinned with
//! `MMC_BLOCKING=mc,kc,nc` (elements) for experiments. Plans are
//! reported by `mmc exec --json` and recorded in `BENCH_exec.json` so
//! every measured rate carries the blocking it ran under.

use crate::kernel::elem::Element;
use mmc_core::params;
use std::fmt;
use std::sync::OnceLock;

/// One 5-loop blocking decision, in **elements** (not blocks): the
/// executor converts to whole `q×q` block multiples at the tile loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockingPlan {
    /// `A`-panel rows resident in L2 (the `ic` loop step).
    pub mc: usize,
    /// `k` depth packed per panel (the `pc` loop step).
    pub kc: usize,
    /// `B`-panel columns per outer pass (the `jc` loop step).
    pub nc: usize,
}

impl fmt::Display for BlockingPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mc={} kc={} nc={}", self.mc, self.kc, self.nc)
    }
}

/// Detected (or fallback) cache capacities of the host, in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheLevels {
    /// Per-core L1 data cache.
    pub l1d_bytes: u64,
    /// Per-core unified L2.
    pub l2_bytes: u64,
    /// Last-level (shared) cache — L3 when present, else L2.
    pub shared_bytes: u64,
}

impl CacheLevels {
    /// Conservative defaults for hosts without a readable sysfs cache
    /// topology (32 KiB L1d / 1 MiB L2 / 8 MiB shared — the paper's §4.1
    /// machine is in the same regime).
    pub const FALLBACK: CacheLevels =
        CacheLevels { l1d_bytes: 32 << 10, l2_bytes: 1 << 20, shared_bytes: 8 << 20 };

    /// The host's cache sizes from
    /// `/sys/devices/system/cpu/cpu0/cache/index*`, falling back per
    /// level to [`CacheLevels::FALLBACK`]. Read once per process.
    pub fn detect_host() -> CacheLevels {
        static LEVELS: OnceLock<CacheLevels> = OnceLock::new();
        *LEVELS.get_or_init(|| CacheLevels::from_sysfs("/sys/devices/system/cpu/cpu0/cache"))
    }

    /// Parse a sysfs cache directory (factored out of [`detect_host`] so
    /// tests can point it at a fixture).
    fn from_sysfs(base: &str) -> CacheLevels {
        let mut l1d = None;
        let mut l2 = None;
        let mut l3 = None;
        for i in 0..8 {
            let read = |leaf: &str| std::fs::read_to_string(format!("{base}/index{i}/{leaf}")).ok();
            let (Some(level), Some(ty), Some(size)) = (read("level"), read("type"), read("size"))
            else {
                continue;
            };
            let Some(bytes) = parse_bytes(size.trim()) else { continue };
            match (level.trim(), ty.trim()) {
                ("1", "Data") => l1d = Some(bytes),
                ("2", _) => l2 = Some(bytes),
                ("3", _) => l3 = Some(bytes),
                _ => {}
            }
        }
        CacheLevels {
            l1d_bytes: l1d.unwrap_or(CacheLevels::FALLBACK.l1d_bytes),
            l2_bytes: l2.unwrap_or(CacheLevels::FALLBACK.l2_bytes),
            shared_bytes: l3.or(l2).unwrap_or(CacheLevels::FALLBACK.shared_bytes),
        }
    }
}

/// Parse a byte-size string with an optional binary suffix (`"48K"`,
/// `"64m"`, `"2g"`, bare bytes) into bytes.
///
/// This is the one byte-size parser shared by the sysfs cache probe,
/// the CLI budget flags (`--mem-budget`, `serve --ram-budget`) and any
/// other place that accepts human-sized capacities. Multiplication is
/// checked: a hostile or corrupt value like `"99999999999999999G"`
/// returns `None` instead of overflowing in release builds.
pub fn parse_bytes(s: &str) -> Option<u64> {
    let (digits, mul) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1u64 << 10),
        b'M' | b'm' => (&s[..s.len() - 1], 1 << 20),
        b'G' | b'g' => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    digits.parse::<u64>().ok().and_then(|v| v.checked_mul(mul))
}

/// Derive the analytic plan for element type `T` from `levels`.
///
/// Each level contributes one [`params::max_panel_depth`] solve — the
/// paper's `α² + 2αβ ≤ C_S` footprint with the resident tile of the
/// level below as `α` — over half the level's capacity in elements.
pub fn derive_plan<T: Element>(levels: &CacheLevels) -> BlockingPlan {
    let es = std::mem::size_of::<T>();
    let budget = |bytes: u64| (bytes as usize / es / 2).max(T::MR * T::NR + T::MR + T::NR);
    let kc = params::max_panel_depth(budget(levels.l1d_bytes), T::MR, T::NR).unwrap_or(1).max(8);
    let mc =
        params::max_panel_depth(budget(levels.l2_bytes), kc, T::NR).unwrap_or(T::MR).max(T::MR);
    // Round MC down to whole register-tile rows so the MC loop cuts on
    // micro-panel boundaries when it can.
    let mc = (mc / T::MR * T::MR).max(T::MR);
    let nc =
        params::max_panel_depth(budget(levels.shared_bytes), mc, kc).unwrap_or(T::NR).max(T::NR);
    let nc = (nc / T::NR * T::NR).max(T::NR);
    BlockingPlan { mc, kc, nc }
}

/// The `MMC_BLOCKING=mc,kc,nc` override (elements), parsed once per
/// process. Unset, empty, or `auto` means no override; a malformed value
/// is a usage error that exits with a parse message rather than silently
/// running a different experiment than the one asked for.
pub fn env_override() -> Option<BlockingPlan> {
    static OVERRIDE: OnceLock<Option<BlockingPlan>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| match std::env::var("MMC_BLOCKING") {
        Err(_) => None,
        Ok(s) if s.is_empty() || s == "auto" => None,
        Ok(s) => match parse_override(&s) {
            Ok(plan) => Some(plan),
            Err(e) => {
                eprintln!("mmc-exec: {e}");
                std::process::exit(2);
            }
        },
    })
}

/// Parse an `MMC_BLOCKING` value (`"mc,kc,nc"` in elements).
pub fn parse_override(s: &str) -> Result<BlockingPlan, String> {
    let parts: Vec<&str> = s.split(',').map(str::trim).collect();
    if parts.len() != 3 {
        return Err(format!(
            "MMC_BLOCKING must be \"mc,kc,nc\" (three positive element counts), got {s:?}"
        ));
    }
    let field = |text: &str, name: &str| {
        text.parse::<usize>()
            .ok()
            .filter(|&v| v >= 1)
            .ok_or_else(|| format!("MMC_BLOCKING {name} must be a positive integer, got {text:?}"))
    };
    Ok(BlockingPlan {
        mc: field(parts[0], "mc")?,
        kc: field(parts[1], "kc")?,
        nc: field(parts[2], "nc")?,
    })
}

/// The plan the packed executor runs under for element type `T`:
/// the `MMC_BLOCKING` override when set, else the analytic derivation
/// from the host's detected cache levels.
pub fn active_plan<T: Element>() -> BlockingPlan {
    env_override().unwrap_or_else(|| derive_plan::<T>(&CacheLevels::detect_host()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_bytes_handles_sysfs_and_cli_spellings() {
        assert_eq!(parse_bytes("48K"), Some(48 << 10));
        assert_eq!(parse_bytes("2048K"), Some(2 << 20));
        assert_eq!(parse_bytes("8M"), Some(8 << 20));
        assert_eq!(parse_bytes("64m"), Some(64 << 20));
        assert_eq!(parse_bytes("2g"), Some(2 << 30));
        assert_eq!(parse_bytes("512"), Some(512));
        assert_eq!(parse_bytes("nope"), None);
        assert_eq!(parse_bytes(""), None);
    }

    #[test]
    fn parse_bytes_rejects_overflowing_sizes_instead_of_wrapping() {
        // A corrupt sysfs string (or hostile CLI flag) whose product
        // exceeds u64 must come back None, not a wrapped small number.
        assert_eq!(parse_bytes("99999999999999999G"), None);
        assert_eq!(parse_bytes("18446744073709551615"), Some(u64::MAX));
        assert_eq!(parse_bytes("18446744073709551616"), None);
    }

    #[test]
    fn derived_plan_respects_the_footprint_constraint_per_level() {
        let levels = CacheLevels::FALLBACK;
        let plan = derive_plan::<f64>(&levels);
        let es = std::mem::size_of::<f64>();
        let (mr, nr) = (<f64 as Element>::MR, <f64 as Element>::NR);
        // KC: register tile + A sliver + B sliver within half of L1.
        assert!(
            (mr * nr + plan.kc * (mr + nr)) * es <= levels.l1d_bytes as usize / 2 + (mr + nr) * es
        );
        // MC: B micro-panel + A panel within half of L2.
        assert!(
            (plan.kc * nr + plan.mc * (plan.kc + nr)) * es
                <= levels.l2_bytes as usize / 2 + (plan.kc + nr) * es * mr
        );
        // Ordering sanity: a k panel is deeper than the register tile and
        // NC covers at least one register tile of columns.
        assert!(plan.kc >= 8 && plan.mc >= mr && plan.nc >= nr);
        assert_eq!(plan.mc % mr, 0);
        assert_eq!(plan.nc % nr, 0);
    }

    #[test]
    fn wider_f32_tiles_get_deeper_panels() {
        // Same byte budgets, half the element size: the f32 plan's KC
        // must be at least the f64 plan's.
        let levels = CacheLevels::FALLBACK;
        let p64 = derive_plan::<f64>(&levels);
        let p32 = derive_plan::<f32>(&levels);
        assert!(p32.kc >= p64.kc, "f32 {p32:?} vs f64 {p64:?}");
    }

    #[test]
    fn detect_host_is_positive_and_ordered() {
        let levels = CacheLevels::detect_host();
        assert!(levels.l1d_bytes > 0 && levels.l2_bytes > 0 && levels.shared_bytes > 0);
        assert!(levels.l1d_bytes <= levels.shared_bytes);
    }

    #[test]
    fn override_parser_accepts_good_and_names_bad_fields() {
        assert_eq!(
            parse_override("384, 256,4096").unwrap(),
            BlockingPlan { mc: 384, kc: 256, nc: 4096 }
        );
        assert!(parse_override("1,2").unwrap_err().contains("mc,kc,nc"));
        assert!(parse_override("1,x,3").unwrap_err().contains("kc"));
        assert!(parse_override("0,2,3").unwrap_err().contains("mc"));
    }

    #[test]
    fn display_matches_report_format() {
        let plan = BlockingPlan { mc: 576, kc: 216, nc: 21504 };
        assert_eq!(plan.to_string(), "mc=576 kc=216 nc=21504");
    }

    #[test]
    fn missing_sysfs_falls_back() {
        let levels = CacheLevels::from_sysfs("/definitely/not/a/cache/dir");
        assert_eq!(levels, CacheLevels::FALLBACK);
    }
}
