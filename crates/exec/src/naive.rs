//! Reference block matrix product (the correctness oracle).

use crate::kernel::block_fma;
use crate::kernel::elem::Element;
use crate::matrix::BlockMatrixOf;

/// `C = A × B` by the canonical sequential triple loop over blocks, `k`
/// ascending per `C` block.
///
/// Every schedule in `mmc-core` accumulates each `C` block's contributions
/// in ascending `k` order and bottoms out in the same kernel, so their
/// executed results are *bit-identical* to this oracle — the executor
/// tests compare with `==`, not a tolerance. Generic over the element
/// type: the f32 oracle plays the same role for the f32 executors.
///
/// # Panics
/// Panics if the shapes or block sides are incompatible.
pub fn gemm_naive<T: Element>(a: &BlockMatrixOf<T>, b: &BlockMatrixOf<T>) -> BlockMatrixOf<T> {
    assert_eq!(a.cols(), b.rows(), "inner block dimensions must agree");
    assert_eq!(a.q(), b.q(), "block sides must agree");
    let q = a.q();
    let mut c = BlockMatrixOf::<T>::zeros(a.rows(), b.cols(), q);
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let cb = c.block_mut(i, j);
            for k in 0..a.cols() {
                block_fma(cb, a.block(i, k), b.block(k, j), q);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::BlockMatrix;

    #[test]
    fn identity_product() {
        let q = 4;
        let a = BlockMatrix::from_fn(3, 3, q, |i, j| if i == j { 1.0 } else { 0.0 });
        let b = BlockMatrix::pseudo_random(3, 2, q, 1);
        let c = gemm_naive(&a, &b);
        assert_eq!(c, b.clone());
    }

    #[test]
    fn small_known_product() {
        // 1×1 blocks of q=1: plain scalar matrices.
        let a = BlockMatrix::from_fn(2, 2, 1, |i, j| (i * 2 + j) as f64); // [0 1; 2 3]
        let b = BlockMatrix::from_fn(2, 2, 1, |i, j| if i == j { 2.0 } else { 1.0 }); // [2 1; 1 2]
        let c = gemm_naive(&a, &b);
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(0, 1), 2.0);
        assert_eq!(c.get(1, 0), 7.0);
        assert_eq!(c.get(1, 1), 8.0);
    }

    #[test]
    fn f32_oracle_matches_f64_narrowing() {
        let a = BlockMatrixOf::<f32>::pseudo_random(2, 3, 4, 5);
        let b = BlockMatrixOf::<f32>::pseudo_random(3, 2, 4, 6);
        let c = gemm_naive(&a, &b);
        assert_eq!((c.rows(), c.cols(), c.q()), (2, 2, 4));
    }

    #[test]
    #[should_panic(expected = "inner block dimensions")]
    fn mismatched_shapes_rejected() {
        let a = BlockMatrix::zeros(2, 3, 4);
        let b = BlockMatrix::zeros(2, 2, 4);
        let _ = gemm_naive(&a, &b);
    }
}
