//! # mmc-exec — real execution of the paper's schedules
//!
//! While `mmc-sim` counts the cache misses of each schedule, this crate
//! *runs* them: dense block-major matrices generic over `f64`/`f32`
//! ([`BlockMatrix`] / [`BlockMatrixOf`]), a register-blocked `q×q`
//! micro-kernel subsystem with runtime CPU dispatch and panel packing
//! ([`kernel`]), analytic 5-loop blocking derived from the paper's cache
//! model ([`blocking`]), an exact schedule replayer ([`ExecSink`] /
//! [`run_schedule`]) and rayon-parallel tiled executors
//! ([`gemm_parallel`]) whose tilings come straight from the paper's
//! parameters (`λ`, `√p·µ`, `(α, β)`).
//!
//! Every path accumulates contributions in ascending `k` order with the
//! same dispatched kernel, so all executors produce bit-identical
//! results — across code paths *and* across blocking plans — and the
//! tests compare them with `==`. See [`kernel`] for the dispatch rules
//! and the `MMC_KERNEL` override, and [`blocking`] for `MMC_BLOCKING`.
//!
//! ```
//! use mmc_exec::{gemm_parallel, gemm_naive, BlockMatrix, Tiling};
//! use mmc_sim::MachineConfig;
//!
//! let machine = MachineConfig::quad_q32();
//! let a = BlockMatrix::pseudo_random(6, 4, 8, 1);
//! let b = BlockMatrix::pseudo_random(4, 5, 8, 2);
//! let c = gemm_parallel(&a, &b, Tiling::shared_opt(&machine).unwrap());
//! assert_eq!(c, gemm_naive(&a, &b));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod blocking;
pub mod job;
pub mod kernel;
pub mod matrix;
pub mod metrics;
pub mod naive;
pub mod runner;
pub mod tracing;

pub use blocking::{parse_bytes, BlockingPlan};
pub use job::CancelToken;
pub use kernel::elem::Element;
pub use kernel::KernelVariant;
pub use matrix::{BlockMatrix, BlockMatrixOf};
pub use naive::gemm_naive;
pub use runner::{
    gemm_accumulate, gemm_accumulate_cancellable, gemm_blocked, gemm_blocked_traced, gemm_parallel,
    gemm_parallel_cancellable, gemm_parallel_traced, gemm_parallel_with_kernel,
    gemm_parallel_with_plan, run_schedule, task_spans_to_chrome, ExecSink, TaskSpan, Tiling,
};
pub use tracing::{exec_drift, run_traced, spans_to_chrome, task_spans, ExecModel, TracedRun};
