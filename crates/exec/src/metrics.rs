//! Executor metrics: per-kernel FLOP counters and panel-pack traffic,
//! registered in the process-wide [`mmc_obs`] registry.
//!
//! Counter names are stable API (the `mmc counters` subcommand and the
//! golden reconciliation tests key on them):
//!
//! * `exec.flops.<variant>` — useful FLOPs retired through the tiled
//!   executors (`gemm_parallel*`, `gemm_accumulate`), counted as
//!   `2·q³` per block FMA and bumped **once per tile** so the hot loop
//!   pays one relaxed atomic add per task, not per block.
//! * `exec.flops.schedule` — FLOPs retired by the exact schedule
//!   replayer ([`crate::ExecSink`]), counted per `fma` event.
//! * `exec.tiles.<variant>` — tiles completed per kernel variant.
//! * `exec.pack_bytes` — bytes written into packing arenas by
//!   [`crate::kernel::pack::pack_a_panel`] / `pack_b_panel`: the real
//!   memory traffic the packed path adds in exchange for contiguous
//!   micro-panel streams.

use crate::kernel::KernelVariant;
use mmc_obs::{global, Counter};
use std::sync::{Arc, OnceLock};

/// The `exec.flops.<variant>` counter for `variant`, cached after first
/// lookup so the tile loop never touches the registry mutex.
pub fn flops(variant: KernelVariant) -> &'static Counter {
    static FLOPS: OnceLock<[Arc<Counter>; 3]> = OnceLock::new();
    &FLOPS.get_or_init(|| {
        [
            global().counter("exec.flops.scalar"),
            global().counter("exec.flops.avx2_fma"),
            global().counter("exec.flops.neon"),
        ]
    })[variant_index(variant)]
}

/// The `exec.tiles.<variant>` counter for `variant`.
pub fn tiles(variant: KernelVariant) -> &'static Counter {
    static TILES: OnceLock<[Arc<Counter>; 3]> = OnceLock::new();
    &TILES.get_or_init(|| {
        [
            global().counter("exec.tiles.scalar"),
            global().counter("exec.tiles.avx2_fma"),
            global().counter("exec.tiles.neon"),
        ]
    })[variant_index(variant)]
}

/// The `exec.flops.schedule` counter (exact schedule replay).
pub fn schedule_flops() -> &'static Counter {
    static SCHEDULE: OnceLock<Arc<Counter>> = OnceLock::new();
    SCHEDULE.get_or_init(|| global().counter("exec.flops.schedule"))
}

/// The `exec.pack_bytes` counter (panel-packing arena traffic).
pub fn pack_bytes() -> &'static Counter {
    static PACK: OnceLock<Arc<Counter>> = OnceLock::new();
    PACK.get_or_init(|| global().counter("exec.pack_bytes"))
}

/// Total `exec.flops.*` across every kernel variant plus the schedule
/// replayer, read from a snapshot of the global registry.
pub fn total_flops_snapshot() -> u64 {
    mmc_obs::global()
        .snapshot()
        .counters
        .iter()
        .filter(|c| c.name.starts_with("exec.flops."))
        .map(|c| c.value)
        .sum()
}

fn variant_index(variant: KernelVariant) -> usize {
    match variant {
        KernelVariant::Scalar => 0,
        KernelVariant::Avx2Fma => 1,
        KernelVariant::Neon => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_cached_and_shared() {
        let before = flops(KernelVariant::Scalar).get();
        flops(KernelVariant::Scalar).add(10);
        assert_eq!(flops(KernelVariant::Scalar).get(), before + 10);
        // The cached Arc and a fresh registry lookup see the same metric.
        assert_eq!(global().counter("exec.flops.scalar").get(), before + 10);
    }
}
