//! The sequential `q×q` block micro-kernel.
//!
//! Every algorithm in the paper bottoms out in "BLAS routines" on `q×q`
//! blocks (§2.1). This is that routine: `C += A × B` on dense row-major
//! `q×q` tiles, written so the inner loop is a contiguous
//! multiply-accumulate over `C` and `B` rows that the compiler
//! auto-vectorizes.

/// `c += a × b` for row-major `q×q` blocks.
///
/// Deterministic: the accumulation order is fixed (`k` middle loop), so
/// every executor that calls this kernel with the same operand order
/// produces bit-identical results — which the test-suite exploits to
/// compare schedules exactly.
///
/// # Panics
/// Panics (via `debug_assert!` in release-with-debug builds and slice
/// indexing otherwise) if any slice is shorter than `q²`.
#[inline]
pub fn block_fma(c: &mut [f64], a: &[f64], b: &[f64], q: usize) {
    debug_assert!(c.len() >= q * q && a.len() >= q * q && b.len() >= q * q);
    for i in 0..q {
        let c_row = &mut c[i * q..(i + 1) * q];
        let a_row = &a[i * q..(i + 1) * q];
        for k in 0..q {
            let aik = a_row[k];
            let b_row = &b[k * q..(k + 1) * q];
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += aik * *bv;
            }
        }
    }
}

/// Reference scalar implementation (j-inner with explicit indexing), used
/// to validate [`block_fma`].
pub fn block_fma_reference(c: &mut [f64], a: &[f64], b: &[f64], q: usize) {
    for i in 0..q {
        for j in 0..q {
            let mut acc = 0.0;
            for k in 0..q {
                acc += a[i * q + k] * b[k * q + j];
            }
            c[i * q + j] += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(q: usize, f: impl Fn(usize, usize) -> f64) -> Vec<f64> {
        let mut v = vec![0.0; q * q];
        for i in 0..q {
            for j in 0..q {
                v[i * q + j] = f(i, j);
            }
        }
        v
    }

    #[test]
    fn identity_times_anything() {
        let q = 8;
        let id = pattern(q, |i, j| if i == j { 1.0 } else { 0.0 });
        let b = pattern(q, |i, j| (i * q + j) as f64);
        let mut c = vec![0.0; q * q];
        block_fma(&mut c, &id, &b, q);
        assert_eq!(c, b);
    }

    #[test]
    fn accumulates_into_c() {
        let q = 4;
        let a = pattern(q, |_, _| 1.0);
        let b = pattern(q, |_, _| 2.0);
        let mut c = pattern(q, |_, _| 5.0);
        block_fma(&mut c, &a, &b, q);
        // Each element gains sum_k 1·2 = 2q.
        assert!(c.iter().all(|&x| (x - (5.0 + 2.0 * q as f64)).abs() < 1e-12));
    }

    #[test]
    fn matches_reference_on_irregular_data() {
        for q in [1usize, 2, 3, 5, 8, 16, 32] {
            let a = pattern(q, |i, j| ((i * 7 + j * 13) % 11) as f64 - 5.0);
            let b = pattern(q, |i, j| ((i * 3 + j * 5) % 7) as f64 * 0.25);
            let mut c1 = pattern(q, |i, j| (i + j) as f64);
            let mut c2 = c1.clone();
            block_fma(&mut c1, &a, &b, q);
            block_fma_reference(&mut c2, &a, &b, q);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-9, "q={q}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn q1_is_scalar_fma() {
        let mut c = [10.0];
        block_fma(&mut c, &[3.0], &[4.0], 1);
        assert_eq!(c[0], 22.0);
    }
}
