//! Quick standalone kernel throughput probe: times `block_fma_with` for
//! every micro-kernel variant this host can dispatch, at a few block
//! sides, without the criterion harness.
//!
//! ```bash
//! cargo run --release -p mmc-exec --example kbench
//! ```

fn main() {
    use mmc_exec::kernel::{block_fma_with, variant, variants_available};
    use mmc_exec::BlockMatrix;
    println!("dispatched: {}", variant());
    for q in [32usize, 64, 96] {
        let a = BlockMatrix::pseudo_random(1, 1, q, 1);
        let b = BlockMatrix::pseudo_random(1, 1, q, 2);
        let flops = 2.0 * (q as f64).powi(3);
        for v in variants_available() {
            let mut c = vec![0.0; q * q];
            let reps = (2e8 / flops) as usize;
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                block_fma_with(v, &mut c, a.block(0, 0), b.block(0, 0), q);
            }
            let s = t0.elapsed().as_secs_f64();
            println!("q={q} {v}: {:.2} GFLOP/s", flops * reps as f64 / s / 1e9);
            std::hint::black_box(&c);
        }
    }
}
