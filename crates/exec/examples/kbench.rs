//! Quick standalone kernel throughput probe: times the 5-loop parallel
//! GEMM and the raw `block_fma_with` kernel for every micro-kernel
//! variant this host can dispatch, without the criterion harness.
//!
//! ```bash
//! cargo run --release -p mmc-exec --example kbench
//! MMC_BLOCKING=384,256,4096 cargo run --release -p mmc-exec --example kbench
//! ```
//!
//! An unknown `MMC_KERNEL` value fails with the dispatcher's error
//! listing the valid variants (exit 2) instead of silently falling back.

fn main() {
    use mmc_exec::kernel::{block_fma_with, variant, variants_available};
    use mmc_exec::{blocking, gemm_parallel_with_kernel, BlockMatrix, Tiling};

    // Resolves MMC_KERNEL (and exits with the valid-variant list on a
    // bogus value) before any timing starts.
    let dispatched = variant();
    let plan = blocking::active_plan::<f64>();

    // Full executor probe: the 5-loop macro-kernel over a 384×384
    // product, one line per variant with the blocking it ran under.
    let (order, q) = (6u32, 64usize);
    let a = BlockMatrix::pseudo_random(order, order, q, 1);
    let b = BlockMatrix::pseudo_random(order, order, q, 2);
    let gemm_flops = 2.0 * (order as f64 * q as f64).powi(3);
    let tiling = Tiling { tile_m: order, tile_n: order, tile_k: 4 };
    for v in variants_available() {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = std::time::Instant::now();
            std::hint::black_box(gemm_parallel_with_kernel(&a, &b, tiling, v));
            best = best.min(t0.elapsed().as_secs_f64());
        }
        println!(
            "gemm {n}x{n} kernel={v}{mark}: {rate:.2} GFLOP/s ({plan})",
            n = order as usize * q,
            mark = if v == dispatched { " [dispatched]" } else { "" },
            rate = gemm_flops / best / 1e9,
        );
    }

    // Raw per-block kernel probe (no packing, no threading).
    for q in [32usize, 64, 96] {
        let a = BlockMatrix::pseudo_random(1, 1, q, 1);
        let b = BlockMatrix::pseudo_random(1, 1, q, 2);
        let flops = 2.0 * (q as f64).powi(3);
        for v in variants_available() {
            let mut c = vec![0.0; q * q];
            let reps = (2e8 / flops) as usize;
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                block_fma_with(v, &mut c, a.block(0, 0), b.block(0, 0), q);
            }
            let s = t0.elapsed().as_secs_f64();
            println!("block q={q} kernel={v}: {:.2} GFLOP/s", flops * reps as f64 / s / 1e9);
            std::hint::black_box(&c);
        }
    }
}
