//! Block-major tiled matrix files: the on-disk operand format of the
//! out-of-core executor.
//!
//! A tiled file is a fixed 40-byte checksummed header followed by the
//! matrix's `q×q` blocks in block-row-major order, each block row-major
//! little-endian `f64` — exactly [`BlockMatrix`]'s in-memory layout, so a
//! whole-matrix read is one contiguous copy, and any rectangular panel of
//! blocks is `rows` contiguous runs.
//!
//! ```text
//! offset  size  field
//!      0     4  magic "MMCT"
//!      4     4  layout version (little-endian u32, currently 1)
//!      8     4  block rows
//!     12     4  block cols
//!     16     8  block side q
//!     24     8  reserved (zero)
//!     32     8  FNV-1a over bytes 0..32
//! ```
//!
//! All block I/O is *positioned* (`pread`/`pwrite` via
//! [`std::os::unix::fs::FileExt`]), so concurrent prefetch threads share
//! one `File` handle without a seek-position race.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use mmc_exec::BlockMatrix;

/// Magic bytes opening every tiled file.
pub const MAGIC: [u8; 4] = *b"MMCT";
/// Current layout version.
pub const LAYOUT_VERSION: u32 = 1;
/// Bytes of header before the first block.
pub const HEADER_LEN: u64 = 40;

/// Errors from reading or validating a tiled file.
#[derive(Debug)]
pub enum TiledError {
    /// Underlying I/O failure (with the path for context).
    Io(PathBuf, io::Error),
    /// The header is not a valid tiled-matrix header.
    BadHeader(PathBuf, String),
    /// Header parses but the file is shorter than `rows·cols` blocks.
    Truncated(PathBuf, u64, u64),
}

impl std::fmt::Display for TiledError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TiledError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            TiledError::BadHeader(path, why) => {
                write!(f, "{}: not a tiled matrix file ({why})", path.display())
            }
            TiledError::Truncated(path, want, got) => write!(
                f,
                "{}: truncated tiled file (need {want} bytes, found {got})",
                path.display()
            ),
        }
    }
}

impl std::error::Error for TiledError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TiledError::Io(_, e) => Some(e),
            _ => None,
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The parsed header of a tiled file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TiledHeader {
    /// Block rows.
    pub rows: u32,
    /// Block columns.
    pub cols: u32,
    /// Block side in elements.
    pub q: usize,
}

impl TiledHeader {
    fn encode(&self) -> [u8; HEADER_LEN as usize] {
        let mut buf = [0u8; HEADER_LEN as usize];
        buf[0..4].copy_from_slice(&MAGIC);
        buf[4..8].copy_from_slice(&LAYOUT_VERSION.to_le_bytes());
        buf[8..12].copy_from_slice(&self.rows.to_le_bytes());
        buf[12..16].copy_from_slice(&self.cols.to_le_bytes());
        buf[16..24].copy_from_slice(&(self.q as u64).to_le_bytes());
        // bytes 24..32 reserved, zero
        let sum = fnv1a(&buf[0..32]);
        buf[32..40].copy_from_slice(&sum.to_le_bytes());
        buf
    }

    fn decode(buf: &[u8; HEADER_LEN as usize]) -> Result<TiledHeader, String> {
        if buf[0..4] != MAGIC {
            return Err("bad magic".into());
        }
        let stored = u64::from_le_bytes(buf[32..40].try_into().unwrap());
        if stored != fnv1a(&buf[0..32]) {
            return Err("header checksum mismatch".into());
        }
        let version = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if version != LAYOUT_VERSION {
            return Err(format!("unsupported layout version {version}"));
        }
        let rows = u32::from_le_bytes(buf[8..12].try_into().unwrap());
        let cols = u32::from_le_bytes(buf[12..16].try_into().unwrap());
        let q = u64::from_le_bytes(buf[16..24].try_into().unwrap());
        if rows == 0 || cols == 0 || q == 0 {
            return Err("zero dimension".into());
        }
        // Guard the size arithmetic below against overflow on hostile input.
        let blocks = rows as u64 * cols as u64;
        if q > u32::MAX as u64 || blocks.checked_mul(q * q * 8).is_none() {
            return Err("dimensions overflow".into());
        }
        Ok(TiledHeader { rows, cols, q: q as usize })
    }

    /// Bytes per block (`q²·8`).
    pub fn block_bytes(&self) -> u64 {
        (self.q * self.q * 8) as u64
    }

    /// Total file size implied by the header.
    pub fn file_len(&self) -> u64 {
        HEADER_LEN + self.rows as u64 * self.cols as u64 * self.block_bytes()
    }
}

#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(not(unix))]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    // Fallback for non-unix targets: clone the handle so the shared seek
    // position is not raced between prefetch threads.
    use std::io::{Seek, SeekFrom};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

/// A read-only tiled matrix file with positioned block access.
///
/// Cloneable handles are cheap (`try_clone` of the descriptor is not
/// needed — positioned reads share one descriptor safely), so the
/// prefetcher hands one `TiledFile` to every I/O thread behind an `Arc`.
#[derive(Debug)]
pub struct TiledFile {
    path: PathBuf,
    file: File,
    header: TiledHeader,
}

impl TiledFile {
    /// Open `path`, validate its header and length, and return a handle.
    pub fn open(path: &Path) -> Result<TiledFile, TiledError> {
        let mut file = File::open(path).map_err(|e| TiledError::Io(path.to_path_buf(), e))?;
        let mut buf = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                TiledError::BadHeader(path.to_path_buf(), "file shorter than header".into())
            } else {
                TiledError::Io(path.to_path_buf(), e)
            }
        })?;
        let header = TiledHeader::decode(&buf)
            .map_err(|why| TiledError::BadHeader(path.to_path_buf(), why))?;
        let len = file.metadata().map_err(|e| TiledError::Io(path.to_path_buf(), e))?.len();
        if len < header.file_len() {
            return Err(TiledError::Truncated(path.to_path_buf(), header.file_len(), len));
        }
        Ok(TiledFile { path: path.to_path_buf(), file, header })
    }

    /// The validated header.
    pub fn header(&self) -> TiledHeader {
        self.header
    }

    /// The path this file was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Byte offset of block `(bi, bj)`.
    fn block_offset(&self, bi: u32, bj: u32) -> u64 {
        debug_assert!(bi < self.header.rows && bj < self.header.cols);
        HEADER_LEN + (bi as u64 * self.header.cols as u64 + bj as u64) * self.header.block_bytes()
    }

    /// Read the `rows×cols` panel of blocks whose top-left block is
    /// `(bi0, bj0)` into `out` (block-major, caller-sized to
    /// `rows·cols·q²`). Each block row of the panel is contiguous on
    /// disk, so this issues `rows` positioned reads. Returns the bytes
    /// read.
    pub fn read_panel(
        &self,
        bi0: u32,
        bj0: u32,
        rows: u32,
        cols: u32,
        out: &mut [f64],
    ) -> Result<u64, TiledError> {
        let h = self.header;
        assert!(bi0 + rows <= h.rows && bj0 + cols <= h.cols, "panel out of bounds");
        let q2 = h.q * h.q;
        assert_eq!(out.len(), rows as usize * cols as usize * q2, "panel buffer size");
        let row_bytes = cols as u64 * h.block_bytes();
        for r in 0..rows {
            let dst = &mut out[r as usize * cols as usize * q2..][..cols as usize * q2];
            let byte_dst = bytemuck_cast_mut(dst);
            read_exact_at(&self.file, byte_dst, self.block_offset(bi0 + r, bj0))
                .map_err(|e| TiledError::Io(self.path.clone(), e))?;
            debug_assert_eq!(byte_dst.len() as u64, row_bytes);
        }
        if cfg!(target_endian = "big") {
            for v in out.iter_mut() {
                *v = f64::from_bits(u64::from_le(v.to_bits()));
            }
        }
        Ok(rows as u64 * row_bytes)
    }

    /// Read the whole matrix into a [`BlockMatrix`].
    pub fn read_matrix(&self) -> Result<BlockMatrix, TiledError> {
        let h = self.header;
        let mut out = vec![0.0f64; h.rows as usize * h.cols as usize * h.q * h.q];
        self.read_panel(0, 0, h.rows, h.cols, &mut out)?;
        Ok(BlockMatrix::from_vec(h.rows, h.cols, h.q, out))
    }
}

/// View a `&mut [f64]` as little-endian bytes for positioned I/O.
///
/// Safe: `f64` has no invalid bit patterns and the slice stays within one
/// allocation; alignment only decreases.
fn bytemuck_cast_mut(data: &mut [f64]) -> &mut [u8] {
    unsafe { std::slice::from_raw_parts_mut(data.as_mut_ptr().cast::<u8>(), data.len() * 8) }
}

fn bytemuck_cast(data: &[f64]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), data.len() * 8) }
}

/// A streaming writer producing a tiled file block-row by block-row.
#[derive(Debug)]
pub struct TiledWriter {
    path: PathBuf,
    file: File,
    header: TiledHeader,
    written_blocks: u64,
}

impl TiledWriter {
    /// Create (truncating) `path` with the given shape and write the
    /// header. Blocks must then be appended in block-row-major order.
    pub fn create(path: &Path, rows: u32, cols: u32, q: usize) -> Result<TiledWriter, TiledError> {
        assert!(rows > 0 && cols > 0 && q > 0, "matrix must have at least one block");
        let header = TiledHeader { rows, cols, q };
        let file = File::create(path).map_err(|e| TiledError::Io(path.to_path_buf(), e))?;
        let mut w = TiledWriter { path: path.to_path_buf(), file, header, written_blocks: 0 };
        w.file.write_all(&header.encode()).map_err(|e| TiledError::Io(w.path.clone(), e))?;
        Ok(w)
    }

    /// Append the next blocks in block-row-major order (`data` holds a
    /// whole number of `q²`-element blocks).
    pub fn append_blocks(&mut self, data: &[f64]) -> Result<(), TiledError> {
        let q2 = self.header.q * self.header.q;
        assert_eq!(data.len() % q2, 0, "must append whole blocks");
        if cfg!(target_endian = "big") {
            let le: Vec<u64> = data.iter().map(|v| v.to_bits().to_le()).collect();
            let bytes =
                unsafe { std::slice::from_raw_parts(le.as_ptr().cast::<u8>(), le.len() * 8) };
            self.file.write_all(bytes).map_err(|e| TiledError::Io(self.path.clone(), e))?;
        } else {
            self.file
                .write_all(bytemuck_cast(data))
                .map_err(|e| TiledError::Io(self.path.clone(), e))?;
        }
        self.written_blocks += (data.len() / q2) as u64;
        Ok(())
    }

    /// Flush and close, verifying every block was written.
    pub fn finish(mut self) -> Result<(), TiledError> {
        let want = self.header.rows as u64 * self.header.cols as u64;
        assert_eq!(
            self.written_blocks, want,
            "tiled file incomplete: wrote {} of {want} blocks",
            self.written_blocks
        );
        self.file.flush().map_err(|e| TiledError::Io(self.path.clone(), e))
    }
}

#[cfg(unix)]
fn write_all_at(file: &File, buf: &[u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(buf, offset)
}

#[cfg(not(unix))]
fn write_all_at(file: &File, buf: &[u8], offset: u64) -> io::Result<()> {
    use std::io::{Seek, SeekFrom};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(buf)
}

/// A tiled output file supporting positioned panel writes, for producers
/// (like the out-of-core executor) that finish `C` tiles out of
/// block-row order. The file is pre-sized at creation so every write
/// lands inside the final extent.
#[derive(Debug)]
pub struct TiledOutput {
    path: PathBuf,
    file: File,
    header: TiledHeader,
}

impl TiledOutput {
    /// Create (truncating) `path`, write the header, and pre-size the
    /// file to hold all `rows·cols` blocks.
    pub fn create(path: &Path, rows: u32, cols: u32, q: usize) -> Result<TiledOutput, TiledError> {
        assert!(rows > 0 && cols > 0 && q > 0, "matrix must have at least one block");
        let header = TiledHeader { rows, cols, q };
        let file = File::create(path).map_err(|e| TiledError::Io(path.to_path_buf(), e))?;
        write_all_at(&file, &header.encode(), 0)
            .map_err(|e| TiledError::Io(path.to_path_buf(), e))?;
        file.set_len(header.file_len()).map_err(|e| TiledError::Io(path.to_path_buf(), e))?;
        Ok(TiledOutput { path: path.to_path_buf(), file, header })
    }

    /// Write the `rows×cols` block panel with top-left block `(bi0, bj0)`
    /// from `data` (block-major, `rows·cols·q²` elements). Returns the
    /// bytes written.
    pub fn write_panel(
        &self,
        bi0: u32,
        bj0: u32,
        rows: u32,
        cols: u32,
        data: &[f64],
    ) -> Result<u64, TiledError> {
        let h = self.header;
        assert!(bi0 + rows <= h.rows && bj0 + cols <= h.cols, "panel out of bounds");
        let q2 = h.q * h.q;
        assert_eq!(data.len(), rows as usize * cols as usize * q2, "panel buffer size");
        let row_elems = cols as usize * q2;
        for r in 0..rows {
            let src = &data[r as usize * row_elems..][..row_elems];
            let offset =
                HEADER_LEN + ((bi0 + r) as u64 * h.cols as u64 + bj0 as u64) * h.block_bytes();
            if cfg!(target_endian = "big") {
                let le: Vec<u64> = src.iter().map(|v| v.to_bits().to_le()).collect();
                let bytes =
                    unsafe { std::slice::from_raw_parts(le.as_ptr().cast::<u8>(), le.len() * 8) };
                write_all_at(&self.file, bytes, offset)
                    .map_err(|e| TiledError::Io(self.path.clone(), e))?;
            } else {
                write_all_at(&self.file, bytemuck_cast(src), offset)
                    .map_err(|e| TiledError::Io(self.path.clone(), e))?;
            }
        }
        Ok(rows as u64 * row_elems as u64 * 8)
    }

    /// Flush the file to disk.
    pub fn finish(mut self) -> Result<(), TiledError> {
        self.file.flush().map_err(|e| TiledError::Io(self.path.clone(), e))
    }
}

/// Write a whole [`BlockMatrix`] to `path` as a tiled file.
pub fn write_matrix(path: &Path, m: &BlockMatrix) -> Result<(), TiledError> {
    let mut w = TiledWriter::create(path, m.rows(), m.cols(), m.q())?;
    w.append_blocks(m.data())?;
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmc-tiled-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("m.tiled")
    }

    #[test]
    fn round_trips_block_matrix() {
        let path = tmp("roundtrip");
        let m = BlockMatrix::pseudo_random(3, 5, 7, 42);
        write_matrix(&path, &m).unwrap();
        let f = TiledFile::open(&path).unwrap();
        assert_eq!(f.header(), TiledHeader { rows: 3, cols: 5, q: 7 });
        assert_eq!(f.read_matrix().unwrap(), m);
    }

    #[test]
    fn panel_reads_match_blocks() {
        let path = tmp("panel");
        let m = BlockMatrix::pseudo_random(4, 6, 3, 7);
        write_matrix(&path, &m).unwrap();
        let f = TiledFile::open(&path).unwrap();
        // A 2x3 panel at (1, 2).
        let mut buf = vec![0.0; 2 * 3 * 9];
        let bytes = f.read_panel(1, 2, 2, 3, &mut buf).unwrap();
        assert_eq!(bytes, 2 * 3 * 9 * 8);
        let panel = BlockMatrix::from_vec(2, 3, 3, buf);
        for bi in 0..2u32 {
            for bj in 0..3u32 {
                assert_eq!(panel.block(bi, bj), m.block(bi + 1, bj + 2));
            }
        }
    }

    #[test]
    fn rejects_corrupted_header_and_truncation() {
        let path = tmp("corrupt");
        let m = BlockMatrix::pseudo_random(2, 2, 4, 1);
        write_matrix(&path, &m).unwrap();

        // Flip a header byte: checksum must catch it.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[9] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(TiledFile::open(&path), Err(TiledError::BadHeader(_, _))));

        // Restore the header but drop the last block: truncation.
        bytes[9] ^= 0xFF;
        bytes.truncate(bytes.len() - 10);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(TiledFile::open(&path), Err(TiledError::Truncated(_, _, _))));

        // Wrong magic.
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(TiledFile::open(&path), Err(TiledError::BadHeader(_, _))));

        // Shorter than a header.
        std::fs::write(&path, b"MMCT").unwrap();
        assert!(matches!(TiledFile::open(&path), Err(TiledError::BadHeader(_, _))));
    }

    #[test]
    fn positioned_output_accepts_out_of_order_panels() {
        let path = tmp("output");
        let m = BlockMatrix::pseudo_random(5, 4, 3, 11);
        let out = TiledOutput::create(&path, 5, 4, 3).unwrap();
        // Write 2x2-ish panels in reverse order.
        let mut panels = Vec::new();
        for bi0 in (0..5u32).step_by(2) {
            for bj0 in (0..4u32).step_by(2) {
                panels.push((bi0, bj0, 2u32.min(5 - bi0), 2u32.min(4 - bj0)));
            }
        }
        for &(bi0, bj0, rows, cols) in panels.iter().rev() {
            let mut data = Vec::with_capacity((rows * cols) as usize * 9);
            for bi in 0..rows {
                for bj in 0..cols {
                    data.extend_from_slice(m.block(bi0 + bi, bj0 + bj));
                }
            }
            let bytes = out.write_panel(bi0, bj0, rows, cols, &data).unwrap();
            assert_eq!(bytes, (rows * cols) as u64 * 9 * 8);
        }
        out.finish().unwrap();
        assert_eq!(TiledFile::open(&path).unwrap().read_matrix().unwrap(), m);
    }

    #[test]
    fn missing_file_is_io_error() {
        let missing = tmp("missing").with_file_name("nope.tiled");
        assert!(matches!(TiledFile::open(&missing), Err(TiledError::Io(_, _))));
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn unfinished_writer_panics_on_finish() {
        let path = tmp("unfinished");
        let mut w = TiledWriter::create(&path, 2, 2, 2).unwrap();
        w.append_blocks(&[0.0; 4]).unwrap();
        w.finish().unwrap();
    }
}
