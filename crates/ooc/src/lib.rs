//! # mmc-ooc — out-of-core streaming GEMM
//!
//! The paper's two-level model stops at main memory; this crate adds the
//! level below it. Operands live in block-major [`tiled`] files on disk,
//! and a bounded, double-buffered [`pipeline`] streams `A` row-panels and
//! `B` column-panels through dedicated I/O threads into the in-core
//! packed kernels of `mmc-exec`, while each `α×α` `C` tile stays resident
//! in RAM — the Tradeoff algorithm lifted one level, with `(α, β)` sized
//! from the user's RAM budget exactly as §3.3 sizes them from `C_S`
//! ([`mmc_core::params::ooc_staging`]).
//!
//! Three invariants the tests pin down:
//!
//! * **Bounded memory** — resident panel + tile bytes never exceed the
//!   budget: the ring owns a fixed set of reusable buffers and I/O
//!   threads block (backpressure) when compute lags.
//! * **Bit identity** — the streamed product equals
//!   [`mmc_exec::gemm_parallel`] with `==` for every kernel variant,
//!   because each `C` element accumulates ascending `k` with the same
//!   per-step kernel operation regardless of how panels split the sum.
//! * **Accountable traffic** — bytes moved match
//!   [`mmc_core::OocStaging::disk_blocks`] exactly, and the run reports a
//!   three-term `T_data = M_F/σ_F + M_S/σ_S + M_D/σ_D`
//!   ([`mmc_sim::TData3`]) with the *measured* disk bandwidth.
//!
//! ```no_run
//! use mmc_ooc::{ooc_multiply, write_pseudo_random, OocOpts};
//! use std::path::Path;
//!
//! write_pseudo_random(Path::new("a.tiled"), 64, 64, 32, 1).unwrap();
//! write_pseudo_random(Path::new("b.tiled"), 64, 64, 32, 2).unwrap();
//! let opts = OocOpts::new(8 << 20); // stage through 8 MiB of RAM
//! let report =
//!     ooc_multiply(Path::new("a.tiled"), Path::new("b.tiled"), Path::new("c.tiled"), &opts)
//!         .unwrap();
//! assert!(report.within_budget);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gemm;
pub mod metrics;
pub mod pipeline;
pub mod tiled;

pub use gemm::{
    chrome_trace, default_sigma_f, measured_sigma_f, ooc_drift, ooc_multiply,
    ooc_multiply_cancellable, ooc_verify, write_pseudo_random, ComputeSpan, OocError, OocOpts,
    OocReport, RING_SLOTS,
};
pub use pipeline::{IoSpan, PrefetchStats, Prefetcher, StageRequest, StagedPanel};
pub use tiled::{TiledError, TiledFile, TiledHeader, TiledOutput, TiledWriter};
