//! Prefetch-pipeline metrics, registered in the process-wide
//! [`mmc_obs`] registry alongside the per-run [`crate::PrefetchStats`].
//!
//! `PrefetchStats` is the per-run report (reset every `ooc_multiply`);
//! these metrics are the process-lifetime view a scraper reads. Names
//! are stable API (the golden reconciliation test pins registry deltas
//! against `PrefetchStats` for the same run):
//!
//! * `ooc.bytes_read` — counter, bytes read from tiled files.
//! * `ooc.panels_staged` — counter, panels through the ring.
//! * `ooc.read_us` — histogram, per-panel positioned-read latency (µs).
//! * `ooc.buffer_wait_us` — histogram, I/O-thread backpressure waits
//!   (µs): compute is the bottleneck when these grow.
//! * `ooc.stall_us` — histogram, compute-side waits for the next panel
//!   (µs): disk is the bottleneck when these grow.
//! * `ooc.pool_free` — gauge, free buffers in the pool.
//! * `ooc.queue_depth` — gauge, staging requests not yet claimed.

use mmc_obs::{global, Counter, Gauge, Histogram};
use std::sync::{Arc, OnceLock};

macro_rules! cached {
    ($(#[$doc:meta])* $fn_name:ident, $kind:ident, $ty:ty, $name:literal) => {
        $(#[$doc])*
        pub fn $fn_name() -> &'static $ty {
            static CACHE: OnceLock<Arc<$ty>> = OnceLock::new();
            CACHE.get_or_init(|| global().$kind($name))
        }
    };
}

cached!(
    /// The `ooc.bytes_read` counter.
    bytes_read, counter, Counter, "ooc.bytes_read"
);
cached!(
    /// The `ooc.panels_staged` counter.
    panels_staged, counter, Counter, "ooc.panels_staged"
);
cached!(
    /// The `ooc.read_us` latency histogram.
    read_us, histogram, Histogram, "ooc.read_us"
);
cached!(
    /// The `ooc.buffer_wait_us` backpressure histogram.
    buffer_wait_us, histogram, Histogram, "ooc.buffer_wait_us"
);
cached!(
    /// The `ooc.stall_us` compute-stall histogram.
    stall_us, histogram, Histogram, "ooc.stall_us"
);
cached!(
    /// The `ooc.pool_free` buffer-pool occupancy gauge.
    pool_free, gauge, Gauge, "ooc.pool_free"
);
cached!(
    /// The `ooc.queue_depth` staging-queue gauge.
    queue_depth, gauge, Gauge, "ooc.queue_depth"
);
