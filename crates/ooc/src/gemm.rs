//! The out-of-core multiply driver: walk the Tradeoff staging order over
//! tiled files, stream `A`/`B` panels through the prefetch pipeline, and
//! accumulate each resident `C` tile with the in-core packed kernels.
//!
//! The schedule is the paper's Tradeoff algorithm lifted one level: RAM
//! plays the role of the shared cache, disk the role of main memory. A
//! `C` tile of `α×α` blocks stays resident while `β`-deep `A` row-panels
//! and `B` column-panels stream past it, with `(α, β)` sized from the
//! user's RAM budget by [`mmc_core::params::ooc_staging`] exactly as §3.3
//! sizes them from `C_S` — the footprint `α² + 2·slots·αβ` (the `C`
//! tile plus a `slots`-deep ring for each operand stream) never exceeds
//! the budget.
//!
//! Every `C` element still accumulates its `z·q` contributions in
//! ascending `k` with one kernel multiply-accumulate per step, so the
//! result is bit-identical (`==`) to [`mmc_exec::gemm_parallel`] under
//! the same kernel variant — the integration tests assert exactly that.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use mmc_core::params::ooc_staging;
use mmc_core::{formulas, OocStaging, ProblemSpec};
use mmc_exec::runner::gemm_accumulate_cancellable;
use mmc_exec::{gemm_parallel_with_kernel, BlockMatrix, CancelToken, KernelVariant, Tiling};
use mmc_obs::span::{self, SpanKind};
use mmc_obs::{DriftReport, PhaseSample};
use mmc_sim::{ChromeTraceBuilder, MachineConfig, TData3};

use crate::pipeline::{PrefetchStats, Prefetcher, StageRequest};
use crate::tiled::{TiledError, TiledFile, TiledOutput};

/// Ring depth per operand stream: 2 = double buffering (one panel in
/// compute, one in flight).
pub const RING_SLOTS: u32 = 2;

/// Options for an out-of-core multiply.
#[derive(Clone, Debug)]
pub struct OocOpts {
    /// RAM budget in bytes for the resident `C` tile plus the panel ring.
    pub mem_budget_bytes: u64,
    /// Dedicated I/O (prefetch) threads.
    pub io_threads: usize,
    /// Kernel variant for the in-core accumulation.
    pub variant: KernelVariant,
    /// Machine model used for the two in-core terms of the `T_data`
    /// report and the compute tiling heuristic.
    pub machine: MachineConfig,
    /// Assumed disk/RAM bandwidth ratio `σ_F/σ_S` used only to *size*
    /// `α` before the run (the report uses the measured `σ_F`). Smaller
    /// means slower disk, which pushes `α` up to buy more reuse.
    pub sigma_ratio_hint: f64,
}

impl OocOpts {
    /// Defaults: dispatched kernel, two I/O threads, `quad_q32` model,
    /// disk assumed 10× slower than RAM.
    pub fn new(mem_budget_bytes: u64) -> OocOpts {
        OocOpts {
            mem_budget_bytes,
            io_threads: 2,
            variant: mmc_exec::kernel::variant(),
            machine: MachineConfig::quad_q32(),
            sigma_ratio_hint: 0.1,
        }
    }
}

/// Errors from the out-of-core driver.
#[derive(Debug)]
pub enum OocError {
    /// Reading or writing a tiled file failed.
    Tiled(TiledError),
    /// Operand shapes or block sides disagree.
    Shape(String),
    /// The RAM budget cannot hold even the minimal staging footprint.
    BudgetTooSmall(u64, u64),
    /// The run was cancelled through its [`CancelToken`]; the partial
    /// output file has been removed.
    Cancelled,
}

impl std::fmt::Display for OocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OocError::Tiled(e) => write!(f, "{e}"),
            OocError::Shape(why) => write!(f, "operand mismatch: {why}"),
            OocError::BudgetTooSmall(budget, need) => write!(
                f,
                "--mem-budget of {budget} bytes is below the minimal staging footprint \
                 ({need} bytes: a 1-block C tile plus a {RING_SLOTS}-deep ring per operand)"
            ),
            OocError::Cancelled => write!(f, "multiply cancelled before completion"),
        }
    }
}

impl std::error::Error for OocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OocError::Tiled(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TiledError> for OocError {
    fn from(e: TiledError) -> OocError {
        OocError::Tiled(e)
    }
}

/// One in-core accumulation step, for the trace's compute lane.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ComputeSpan {
    /// First block row of the resident `C` tile.
    pub i0: u32,
    /// First block column of the resident `C` tile.
    pub j0: u32,
    /// First `k` block of the accumulated panel pair.
    pub k0: u32,
    /// Microseconds from run start.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// The JSON metrics snapshot of one out-of-core run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OocReport {
    /// Report schema version ([`mmc_obs::SCHEMA_VERSION`]); reports
    /// written before the field read back as 0.
    #[serde(default)]
    pub schema_version: u32,
    /// `C` block rows.
    pub m: u32,
    /// `C` block columns.
    pub n: u32,
    /// Inner block dimension.
    pub z: u32,
    /// Block side in elements.
    pub q: usize,
    /// Kernel variant that ran.
    pub kernel: String,
    /// I/O threads that staged panels.
    pub io_threads: usize,
    /// The staging geometry the budget bought.
    pub staging: OocStaging,
    /// The RAM budget, bytes.
    pub budget_bytes: u64,
    /// The budget in `q×q` blocks (what the sizing saw).
    pub budget_blocks: u64,
    /// Measured peak bytes checked out of the panel ring.
    pub peak_panel_bytes: u64,
    /// Bytes of the largest resident `C` tile.
    pub c_tile_bytes: u64,
    /// Measured peak resident staging memory: panels + `C` tile.
    pub peak_resident_bytes: u64,
    /// Analytic bound on the kernels' thread-local pack arenas (not part
    /// of the staged budget; reported for full accounting).
    pub pack_arena_bound_bytes: u64,
    /// Whether `peak_resident_bytes` stayed within `budget_bytes`.
    pub within_budget: bool,
    /// Bytes written to the `C` file.
    pub bytes_written: u64,
    /// Measured disk streaming bandwidth, blocks per second per thread —
    /// `None` when the run performed no timed I/O (everything served
    /// from cache in under the clock's resolution), in which case
    /// [`OocReport::t_data3`] prices the disk term at the machine
    /// model's assumed bandwidth ([`default_sigma_f`]) instead.
    pub sigma_f_blocks_per_s: Option<f64>,
    /// The three-term data access time: measured disk term (or the
    /// model default when unmeasured) next to the model's two in-core
    /// terms. `sigma_f` here is always finite and meaningful.
    pub t_data3: TData3,
    /// Wall-clock seconds for the whole multiply.
    pub elapsed_seconds: f64,
    /// Summed seconds inside the in-core accumulation calls.
    pub compute_seconds: f64,
    /// Pipeline statistics (bytes read, stalls, I/O spans).
    pub prefetch: PrefetchStats,
    /// Compute lane spans for the trace.
    pub compute_spans: Vec<ComputeSpan>,
    /// Trace job id the run recorded under ([`mmc_obs::span`]); 0 when
    /// the caller never opened a job. Reports written before the field
    /// read back as 0.
    #[serde(default)]
    pub trace_job: u64,
    /// Predicted-vs-measured drift over the run's phases (see
    /// [`ooc_drift`]); absent in reports written before the field.
    #[serde(default)]
    pub drift: Option<DriftReport>,
}

fn ceil_div(a: u32, b: u32) -> u32 {
    a.div_ceil(b)
}

/// The compute tiling inside one resident `th×tw` `C` tile: split it
/// into roughly `√p × √p` sub-tiles so every core gets work, with the
/// panel's full depth as `tile_k` (any split is bit-identical; this one
/// maximizes packing reuse).
fn inner_tiling(th: u32, tw: u32, kd: u32, cores: usize) -> Tiling {
    let pr = ((cores as f64).sqrt().round() as u32).max(1);
    Tiling { tile_m: ceil_div(th, pr).max(1), tile_n: ceil_div(tw, pr).max(1), tile_k: kd.max(1) }
}

/// Build the Tradeoff staging order: for every `α×α` `C` tile in
/// row-major order, alternate `A` row-panel and `B` column-panel
/// requests along `k` in `β` steps.
fn staging_requests(m: u32, n: u32, z: u32, staging: OocStaging) -> Vec<StageRequest> {
    let (alpha, beta) = (staging.alpha, staging.beta);
    let mut reqs = Vec::new();
    for i0 in (0..m).step_by(alpha as usize) {
        let th = alpha.min(m - i0);
        for j0 in (0..n).step_by(alpha as usize) {
            let tw = alpha.min(n - j0);
            for k0 in (0..z).step_by(beta as usize) {
                let kd = beta.min(z - k0);
                let seq = reqs.len();
                reqs.push(StageRequest {
                    seq,
                    file: 0,
                    bi0: i0,
                    bj0: k0,
                    rows: th,
                    cols: kd,
                    label: format!("A[i={i0},k={k0}]"),
                });
                reqs.push(StageRequest {
                    seq: seq + 1,
                    file: 1,
                    bi0: k0,
                    bj0: j0,
                    rows: kd,
                    cols: tw,
                    label: format!("B[k={k0},j={j0}]"),
                });
            }
        }
    }
    reqs
}

/// The measured disk bandwidth of a run, blocks per second per thread —
/// `None` when no I/O time was observed (nothing read, or reads too
/// fast for the clock), so callers never divide by a fictitious rate.
pub fn measured_sigma_f(read_blocks: u64, io_seconds: f64) -> Option<f64> {
    (io_seconds > 0.0 && read_blocks > 0).then(|| read_blocks as f64 / io_seconds)
}

/// The machine model's assumed disk bandwidth in blocks/s: `σ_S`
/// scaled by the disk/RAM ratio hint. This is what prices the `M_F`
/// term of [`TData3`] when a run measured no I/O — an explicit model
/// default rather than the old silent `1.0 block/s` fallback, which
/// predicted multi-second read legs for instant runs.
pub fn default_sigma_f(machine: &MachineConfig, sigma_ratio_hint: f64) -> f64 {
    (machine.sigma_s * sigma_ratio_hint.max(1e-6)).max(1e-6)
}

/// Multiply the tiled files at `a_path` and `b_path` out of core,
/// writing the tiled product to `out_path` and returning the run report.
pub fn ooc_multiply(
    a_path: &Path,
    b_path: &Path,
    out_path: &Path,
    opts: &OocOpts,
) -> Result<OocReport, OocError> {
    ooc_multiply_inner(a_path, b_path, out_path, opts, None)
}

/// [`ooc_multiply`] as a cancellable job unit: the driver polls `cancel`
/// at every panel-stage boundary (before claiming the next prefetched
/// panel pair) and inside the in-core accumulation's macro loops. On
/// cancellation the prefetch pipeline is shut down and joined
/// mid-stream, the partial output file is removed, and
/// [`OocError::Cancelled`] comes back — the worker pool and filesystem
/// are left exactly as before the job started.
pub fn ooc_multiply_cancellable(
    a_path: &Path,
    b_path: &Path,
    out_path: &Path,
    opts: &OocOpts,
    cancel: &CancelToken,
) -> Result<OocReport, OocError> {
    ooc_multiply_inner(a_path, b_path, out_path, opts, Some(cancel))
}

fn ooc_multiply_inner(
    a_path: &Path,
    b_path: &Path,
    out_path: &Path,
    opts: &OocOpts,
    cancel: Option<&CancelToken>,
) -> Result<OocReport, OocError> {
    let started = Instant::now();
    let fa = Arc::new(TiledFile::open(a_path)?);
    let fb = Arc::new(TiledFile::open(b_path)?);
    let (ha, hb) = (fa.header(), fb.header());
    if ha.q != hb.q {
        return Err(OocError::Shape(format!(
            "block sides differ: {} has q={}, {} has q={}",
            a_path.display(),
            ha.q,
            b_path.display(),
            hb.q
        )));
    }
    if ha.cols != hb.rows {
        return Err(OocError::Shape(format!(
            "inner dimensions differ: {} is {}x{} blocks, {} is {}x{}",
            a_path.display(),
            ha.rows,
            ha.cols,
            b_path.display(),
            hb.rows,
            hb.cols
        )));
    }
    let (m, z, n, q) = (ha.rows, ha.cols, hb.cols, ha.q);
    let block_bytes = (q * q * 8) as u64;
    // The caller's trace job (the CLI opens one before the run); the
    // pipeline's I/O threads pick it up through `Prefetcher::spawn`.
    let trace_job = span::current_job();

    let budget_blocks = opts.mem_budget_bytes / block_bytes;
    let min_blocks = 1 + 2 * RING_SLOTS as u64; // α = β = 1 footprint
    let staging = ooc_staging(budget_blocks, RING_SLOTS, opts.sigma_ratio_hint, 1.0)
        .ok_or(OocError::BudgetTooSmall(opts.mem_budget_bytes, min_blocks * block_bytes))?;
    let (alpha, beta) = (staging.alpha, staging.beta);

    let requests = staging_requests(m, n, z, staging);
    let n_requests = requests.len();
    let panel_elems = alpha as usize * beta as usize * q * q;
    let pool_buffers = 2 * RING_SLOTS as usize; // ring per operand stream
    let mut pf = Prefetcher::spawn(
        vec![Arc::clone(&fa), Arc::clone(&fb)],
        requests,
        pool_buffers,
        opts.io_threads.max(1),
        panel_elems,
    );
    let epoch = Instant::now();

    let out = TiledOutput::create(out_path, m, n, q)?;
    let mut bytes_written = 0u64;
    let mut compute_spans = Vec::new();
    let mut compute_seconds = 0.0;
    let mut c_buf: Vec<f64> = Vec::new();
    let mut consumed = 0usize;

    let mut cancelled = false;
    'tiles: for i0 in (0..m).step_by(alpha as usize) {
        let th = alpha.min(m - i0);
        for j0 in (0..n).step_by(alpha as usize) {
            let tw = alpha.min(n - j0);
            c_buf.clear();
            c_buf.resize(th as usize * tw as usize * q * q, 0.0);
            let mut c_tile = BlockMatrix::from_vec(th, tw, q, std::mem::take(&mut c_buf));
            for k0 in (0..z).step_by(beta as usize) {
                // Panel-stage boundary: the coarsest cooperative
                // cancellation point — bail before claiming the next
                // prefetched pair so the ring never deadlocks.
                if cancel.is_some_and(CancelToken::is_cancelled) {
                    cancelled = true;
                    break 'tiles;
                }
                let kd = beta.min(z - k0);
                let pa = pf.next().expect("staging order exhausted early")?;
                let pb = pf.next().expect("staging order exhausted early")?;
                consumed += 2;
                let a_panel = BlockMatrix::from_vec(th, kd, q, pa.data);
                let b_panel = BlockMatrix::from_vec(kd, tw, q, pb.data);
                let tiling = inner_tiling(th, tw, kd, opts.machine.cores);
                let acc_start = if span::enabled() { span::now_ns() } else { 0 };
                let t0 = Instant::now();
                // Inside each call the executor runs its 5-loop
                // macro-kernel; accumulating panel-by-panel here stays
                // bit-identical to a one-shot in-RAM product because
                // every path applies one multiply-accumulate per C
                // element per ascending k step, and neither the panel
                // split nor the blocking plan moves that order.
                let finished = gemm_accumulate_cancellable(
                    &mut c_tile,
                    &a_panel,
                    &b_panel,
                    tiling,
                    opts.variant,
                    cancel,
                );
                if !finished {
                    cancelled = true;
                    break 'tiles;
                }
                let dur = t0.elapsed();
                compute_seconds += dur.as_secs_f64();
                compute_spans.push(ComputeSpan {
                    i0,
                    j0,
                    k0,
                    start_us: t0.duration_since(epoch).as_micros() as u64,
                    dur_us: dur.as_micros() as u64,
                });
                if span::enabled() {
                    let flops = 2 * (q as u64).pow(3) * th as u64 * tw as u64 * kd as u64;
                    span::emit(
                        trace_job,
                        SpanKind::Accumulate,
                        None,
                        acc_start,
                        dur.as_nanos() as u64,
                        flops,
                        flops,
                        [i0, j0, k0, kd],
                    );
                }
                pf.recycle(a_panel.into_vec());
                pf.recycle(b_panel.into_vec());
            }
            bytes_written += out.write_panel(i0, j0, th, tw, c_tile.data())?;
            c_buf = c_tile.into_vec();
        }
    }
    if cancelled {
        // Dropping the prefetcher shuts down and joins the I/O threads
        // mid-stream (the pipeline is proven safe against this); the
        // partial output must not look like a product.
        drop(pf);
        drop(out);
        let _ = std::fs::remove_file(out_path);
        return Err(OocError::Cancelled);
    }
    debug_assert_eq!(consumed, n_requests, "every staged panel consumed");
    out.finish()?;
    let prefetch = pf.finish();

    let c_tile_bytes = alpha as u64 * alpha as u64 * block_bytes;
    let peak_resident_bytes = prefetch.peak_resident_bytes + c_tile_bytes;
    let read_blocks = prefetch.bytes_read / block_bytes;
    let sigma_f = measured_sigma_f(read_blocks, prefetch.io_seconds);
    let problem = ProblemSpec::new(m, n, z);
    let (ms, md) = formulas::tradeoff(&problem, &opts.machine)
        .or_else(|| formulas::shared_opt(&problem, &opts.machine))
        .map(|p| (p.ms, p.md))
        .unwrap_or((0.0, 0.0));
    let t_data3 = TData3 {
        mf: (read_blocks + bytes_written / block_bytes) as f64,
        ms,
        md,
        // Unmeasured bandwidth prices at the machine model's assumed
        // rate, never a fictitious 1 block/s.
        sigma_f: sigma_f.unwrap_or_else(|| default_sigma_f(&opts.machine, opts.sigma_ratio_hint)),
        sigma_s: opts.machine.sigma_s,
        sigma_d: opts.machine.sigma_d,
    };

    // Pack-arena bound: each rayon worker (plus the caller) packs one
    // inner A panel and one inner B panel of at most
    // (tile_m + tile_n)·β·q² elements at a time.
    let t = inner_tiling(alpha, alpha, beta, opts.machine.cores);
    let workers = rayon::current_num_threads() as u64 + 1;
    let pack_arena_bound_bytes =
        workers * (t.tile_m as u64 + t.tile_n as u64) * beta as u64 * block_bytes;

    let mut report = OocReport {
        schema_version: mmc_obs::SCHEMA_VERSION,
        m,
        n,
        z,
        q,
        kernel: opts.variant.name().to_string(),
        io_threads: opts.io_threads.max(1),
        staging,
        budget_bytes: opts.mem_budget_bytes,
        budget_blocks,
        peak_panel_bytes: prefetch.peak_resident_bytes,
        c_tile_bytes,
        peak_resident_bytes,
        pack_arena_bound_bytes,
        within_budget: peak_resident_bytes <= opts.mem_budget_bytes,
        bytes_written,
        sigma_f_blocks_per_s: sigma_f,
        t_data3,
        elapsed_seconds: started.elapsed().as_secs_f64(),
        compute_seconds,
        prefetch,
        compute_spans,
        trace_job,
        drift: None,
    };
    report.drift = Some(ooc_drift(&report, mmc_obs::drift::DEFAULT_BAND));
    Ok(report)
}

/// Predicted-vs-measured drift for an out-of-core run, from the report's
/// aggregate statistics (so it works even with `MMC_SPANS=off`):
///
/// * `read` — measured positioned-read time against the staging
///   predictor's traffic ([`OocStaging::disk_blocks`] minus the written
///   `C`) priced at the report's `σ_F` — the *measured* bandwidth when
///   the run timed any I/O, else the machine model's assumed rate
///   (`t_data3.sigma_f` either way, never a `1.0 block/s` artifact);
///   with a measured `σ_F` the time ratio equals the traffic ratio
///   `bytes_read / predicted_bytes`, which is the paper-accountability
///   check in time units.
/// * `accumulate` — in-core compute wall time against the product's
///   `2·m·n·z·q³` FLOPs at the machine model's full-chip in-core rate
///   (the `M_S/σ_S + M_D/σ_D` terms of the three-term `T_data`).
/// * `stall` — measured compute-side prefetch stall against the
///   pipeline model's prediction: zero when predicted compute time
///   covers predicted read time (perfect overlap), else the uncovered
///   remainder.
pub fn ooc_drift(report: &OocReport, band: f64) -> DriftReport {
    let block_bytes = (report.q * report.q * 8) as u64;
    let write_blocks = report.m as u64 * report.n as u64;
    let pred_read_blocks =
        report.staging.disk_blocks(report.m, report.n, report.z).saturating_sub(write_blocks);
    let pred_read_bytes = pred_read_blocks * block_bytes;
    let sigma_f_bytes_per_us = (report.t_data3.sigma_f * block_bytes as f64 / 1e6).max(1e-9);
    let pred_read_us = pred_read_bytes as f64 / sigma_f_bytes_per_us;
    let measured_read_us = report.prefetch.io_seconds * 1e6;

    // In-core terms of T_data, in block accesses per σ (the machine
    // model's native unit), converted to µs through σ_S blocks/s.
    let pred_acc_us = (report.t_data3.ms / report.t_data3.sigma_s
        + report.t_data3.md / report.t_data3.sigma_d)
        * 1e6;
    let flops =
        2.0 * (report.q as f64).powi(3) * report.m as f64 * report.n as f64 * report.z as f64;
    let measured_acc_us = report.compute_seconds * 1e6;

    let pred_stall_us = (pred_read_us - pred_acc_us).max(0.0);
    let measured_stall_us = report.prefetch.stall_seconds * 1e6;

    DriftReport::from_samples(
        "ooc",
        report.trace_job,
        band,
        vec![
            PhaseSample {
                phase: "read".to_string(),
                spans: report.prefetch.io_spans.len().max(report.prefetch.panels_staged as usize)
                    as u64,
                measured_us: measured_read_us,
                predicted_us: pred_read_us,
                unit: "byte".to_string(),
                measured_units: report.prefetch.bytes_read as f64,
                predicted_units: pred_read_bytes as f64,
            },
            PhaseSample {
                phase: "accumulate".to_string(),
                spans: report.compute_spans.len() as u64,
                measured_us: measured_acc_us,
                predicted_us: pred_acc_us,
                unit: "flop".to_string(),
                measured_units: flops,
                predicted_units: flops,
            },
            PhaseSample {
                phase: "stall".to_string(),
                spans: report.prefetch.panels_staged,
                measured_us: measured_stall_us,
                predicted_us: pred_stall_us,
                unit: "ns".to_string(),
                measured_units: measured_stall_us * 1e3,
                predicted_units: pred_stall_us * 1e3,
            },
        ],
    )
}

/// Stream a deterministic pseudo-random matrix straight to a tiled file,
/// one block row at a time (never materializing the matrix), bit-exact
/// with [`BlockMatrix::pseudo_random`] for the same `(rows, cols, q,
/// seed)`.
pub fn write_pseudo_random(
    path: &Path,
    rows: u32,
    cols: u32,
    q: usize,
    seed: u64,
) -> Result<(), TiledError> {
    const M: u64 = 0x9E3779B97F4A7C15;
    let mut w = crate::tiled::TiledWriter::create(path, rows, cols, q)?;
    let mut slab = vec![0.0f64; cols as usize * q * q];
    for bi in 0..rows {
        for bj in 0..cols {
            let blk = &mut slab[bj as usize * q * q..][..q * q];
            let base_i = bi as usize * q;
            let base_j = bj as usize * q;
            for ii in 0..q {
                let row_mul = (((base_i + ii) as u64) << 32).wrapping_mul(M);
                let mut col_mul = (base_j as u64).wrapping_mul(M);
                for jj in 0..q {
                    let mut x = seed ^ row_mul.wrapping_add(col_mul);
                    x ^= x >> 30;
                    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
                    x ^= x >> 27;
                    x = x.wrapping_mul(0x94D049BB133111EB);
                    x ^= x >> 31;
                    blk[ii * q + jj] = (x >> 11) as f64 / (1u64 << 52) as f64 - 1.0;
                    col_mul = col_mul.wrapping_add(M);
                }
            }
        }
        w.append_blocks(&slab)?;
    }
    w.finish()
}

/// Re-read all three tiled files, recompute the product in core with the
/// same kernel variant, and return the element count that differs
/// (0 means bit-identical). Intended for test- and smoke-scale matrices
/// — it materializes all three operands.
pub fn ooc_verify(
    a_path: &Path,
    b_path: &Path,
    c_path: &Path,
    variant: KernelVariant,
    machine: &MachineConfig,
) -> Result<u64, OocError> {
    let a = TiledFile::open(a_path)?.read_matrix()?;
    let b = TiledFile::open(b_path)?.read_matrix()?;
    let c = TiledFile::open(c_path)?.read_matrix()?;
    if a.cols() != b.rows() || a.q() != b.q() {
        return Err(OocError::Shape("A and B do not multiply".into()));
    }
    if (c.rows(), c.cols(), c.q()) != (a.rows(), b.cols(), a.q()) {
        return Err(OocError::Shape("C has the wrong shape for A*B".into()));
    }
    let tiling = Tiling::tradeoff(machine)
        .or_else(|| Tiling::shared_opt(machine))
        .unwrap_or(Tiling { tile_m: 1, tile_n: 1, tile_k: 1 });
    let want = gemm_parallel_with_kernel(&a, &b, tiling, variant);
    let mismatches =
        c.data().iter().zip(want.data()).filter(|(x, y)| x.to_bits() != y.to_bits()).count() as u64;
    Ok(mismatches)
}

/// Export the run as a Chrome trace: one Perfetto lane per I/O thread,
/// one compute lane, and a cumulative `bytes_read` counter track.
pub fn chrome_trace(report: &OocReport) -> String {
    let mut b = ChromeTraceBuilder::new("mmc-ooc multiply");
    for t in 0..report.io_threads {
        b.thread(t as u64, &format!("io {t}"));
    }
    let compute_tid = report.io_threads as u64;
    b.thread(compute_tid, "compute");
    let mut reads: Vec<_> = report.prefetch.io_spans.iter().collect();
    reads.sort_by_key(|s| s.start_us);
    let mut cumulative = 0u64;
    for s in &reads {
        b.span(
            s.thread as u64,
            &s.label,
            s.start_us as f64,
            (s.dur_us.max(1)) as f64,
            &[("bytes", s.bytes as f64)],
        );
        cumulative += s.bytes;
        b.counter("bytes_read", (s.start_us + s.dur_us) as f64, cumulative as f64);
    }
    for s in &report.compute_spans {
        b.span(
            compute_tid,
            &format!("C[{},{}] += k{}", s.i0, s.j0, s.k0),
            s.start_us as f64,
            (s.dur_us.max(1)) as f64,
            &[],
        );
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmc_exec::kernel::variants_available;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmc-ooc-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn streamed_generation_matches_in_core_pseudo_random() {
        let dir = tmp("gen");
        let path = dir.join("a.tiled");
        write_pseudo_random(&path, 5, 3, 7, 0xC0FFEE).unwrap();
        let got = TiledFile::open(&path).unwrap().read_matrix().unwrap();
        assert_eq!(got, BlockMatrix::pseudo_random(5, 3, 7, 0xC0FFEE));
    }

    #[test]
    fn multiply_is_bit_identical_to_in_core_for_every_kernel() {
        let dir = tmp("bitid");
        let (m, z, n, q) = (9u32, 7u32, 8u32, 8usize);
        let a_path = dir.join("a.tiled");
        let b_path = dir.join("b.tiled");
        write_pseudo_random(&a_path, m, z, q, 1).unwrap();
        write_pseudo_random(&b_path, z, n, q, 2).unwrap();
        let a = BlockMatrix::pseudo_random(m, z, q, 1);
        let b = BlockMatrix::pseudo_random(z, n, q, 2);
        for variant in variants_available() {
            let c_path = dir.join(format!("c-{}.tiled", variant.name()));
            let mut opts = OocOpts::new(0);
            opts.variant = variant;
            // Budget: ~20 blocks — far below the 9*7 + 7*8 + 9*8 = 191
            // blocks the three operands need in core.
            opts.mem_budget_bytes = 20 * (q * q * 8) as u64;
            let report = ooc_multiply(&a_path, &b_path, &c_path, &opts).unwrap();
            assert!(
                report.within_budget,
                "peak {} > budget {}",
                report.peak_resident_bytes, report.budget_bytes
            );
            assert!(report.staging.alpha >= 1 && report.staging.beta >= 1);
            let got = TiledFile::open(&c_path).unwrap().read_matrix().unwrap();
            let tiling = Tiling { tile_m: 3, tile_n: 3, tile_k: 2 };
            let want = gemm_parallel_with_kernel(&a, &b, tiling, variant);
            assert_eq!(got, want, "ooc result must be bit-identical ({})", variant.name());
            assert_eq!(ooc_verify(&a_path, &b_path, &c_path, variant, &opts.machine).unwrap(), 0);
            // Disk traffic matches the staging predictor exactly.
            let blocks = (q * q * 8) as u64;
            assert_eq!(
                report.prefetch.bytes_read / blocks + report.bytes_written / blocks,
                report.staging.disk_blocks(m, n, z)
            );
        }
    }

    #[test]
    fn tiny_budget_is_rejected_with_context() {
        let dir = tmp("smallbudget");
        let a_path = dir.join("a.tiled");
        let b_path = dir.join("b.tiled");
        write_pseudo_random(&a_path, 2, 2, 4, 1).unwrap();
        write_pseudo_random(&b_path, 2, 2, 4, 2).unwrap();
        let opts = OocOpts::new(64); // less than one block
        let err = ooc_multiply(&a_path, &b_path, &dir.join("c.tiled"), &opts).unwrap_err();
        assert!(matches!(err, OocError::BudgetTooSmall(64, _)), "{err}");
        assert!(err.to_string().contains("--mem-budget"));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let dir = tmp("shape");
        let a_path = dir.join("a.tiled");
        let b_path = dir.join("b.tiled");
        write_pseudo_random(&a_path, 2, 3, 4, 1).unwrap();
        write_pseudo_random(&b_path, 2, 2, 4, 2).unwrap();
        let opts = OocOpts::new(1 << 20);
        let err = ooc_multiply(&a_path, &b_path, &dir.join("c.tiled"), &opts).unwrap_err();
        assert!(matches!(err, OocError::Shape(_)), "{err}");
    }

    #[test]
    fn run_carries_a_drift_report_and_recorder_spans() {
        let dir = tmp("drift");
        let a_path = dir.join("a.tiled");
        let b_path = dir.join("b.tiled");
        let c_path = dir.join("c.tiled");
        let (m, z, n, q) = (6u32, 5u32, 4u32, 4usize);
        write_pseudo_random(&a_path, m, z, q, 1).unwrap();
        write_pseudo_random(&b_path, z, n, q, 2).unwrap();
        let job = span::new_job();
        let opts = OocOpts::new(24 * (q * q * 8) as u64);
        let report = ooc_multiply(&a_path, &b_path, &c_path, &opts).unwrap();
        assert_eq!(report.trace_job, job);
        let drift = report.drift.as_ref().expect("drift attached");
        assert_eq!(drift.source, "ooc");
        assert_eq!(drift.job, job);
        assert!(drift.all_finite());
        let names: Vec<&str> = drift.phases.iter().map(|p| p.phase.as_str()).collect();
        for phase in ["read", "accumulate", "stall"] {
            assert!(names.contains(&phase), "missing {phase} in {names:?}");
        }
        // Traffic accounting: measured read bytes equal the staging
        // predictor's read term, so the read phase's units_ratio is 1.
        let read = drift.phases.iter().find(|p| p.phase == "read").unwrap();
        assert!((read.units_ratio - 1.0).abs() < 1e-12, "units_ratio {}", read.units_ratio);
        // The recorder saw the pipeline: read/stage spans per staged
        // panel, one accumulate span per compute step.
        if span::enabled() {
            let spans = span::collect_job(job);
            let count = |k: SpanKind| spans.iter().filter(|s| s.kind == k).count() as u64;
            assert_eq!(count(SpanKind::Read), report.prefetch.panels_staged);
            assert_eq!(count(SpanKind::Stage), report.prefetch.panels_staged);
            assert_eq!(count(SpanKind::Accumulate), report.compute_spans.len() as u64);
            assert!(count(SpanKind::Stall) >= 1, "compute stalls are recorded");
            let read_bytes: u64 =
                spans.iter().filter(|s| s.kind == SpanKind::Read).map(|s| s.val).sum();
            assert_eq!(read_bytes, report.prefetch.bytes_read);
        }
        // The report round-trips with the new optional fields.
        let json = serde_json::to_string(&report).unwrap();
        let back: OocReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.trace_job, report.trace_job);
        assert_eq!(back.drift, report.drift);
    }

    #[test]
    fn unmeasured_bandwidth_is_explicit_and_never_one_block_per_s() {
        // The helper itself: zero timed I/O (or zero blocks) is None,
        // not a made-up rate.
        assert_eq!(measured_sigma_f(0, 0.0), None);
        assert_eq!(measured_sigma_f(100, 0.0), None);
        assert_eq!(measured_sigma_f(0, 1.0), None);
        assert_eq!(measured_sigma_f(50, 2.0), Some(25.0));

        // A real run, then the pathological zero-I/O case layered on
        // top: the drift's read leg must price at the machine default,
        // not at 1 block/s (which predicted multi-second read legs for
        // instant runs).
        let dir = tmp("nosigma");
        let a_path = dir.join("a.tiled");
        let b_path = dir.join("b.tiled");
        let (m, z, n, q) = (4u32, 3u32, 4u32, 4usize);
        write_pseudo_random(&a_path, m, z, q, 1).unwrap();
        write_pseudo_random(&b_path, z, n, q, 2).unwrap();
        let opts = OocOpts::new(16 * (q * q * 8) as u64);
        let mut report = ooc_multiply(&a_path, &b_path, &dir.join("c.tiled"), &opts).unwrap();
        // Whatever was measured, the modelled sigma_f is finite and
        // consistent with the report.
        assert!(report.t_data3.sigma_f.is_finite() && report.t_data3.sigma_f > 0.0);
        if let Some(s) = report.sigma_f_blocks_per_s {
            assert_eq!(s, report.t_data3.sigma_f);
        }

        // Zero-I/O run: unmeasured bandwidth, model default in TData3.
        report.prefetch.io_seconds = 0.0;
        report.sigma_f_blocks_per_s = None;
        report.t_data3.sigma_f = default_sigma_f(&opts.machine, opts.sigma_ratio_hint);
        // The default carries the machine's semantics — σ_S scaled by
        // the disk/RAM ratio hint — not the old hardcoded 1.0 (which,
        // unrelated to any bandwidth, predicted multi-second read legs
        // for instant runs on real-bandwidth machines).
        assert_eq!(report.t_data3.sigma_f, opts.machine.sigma_s * opts.sigma_ratio_hint);
        let drift = ooc_drift(&report, 1.0);
        assert!(drift.all_finite());
        let read = drift.phases.iter().find(|p| p.phase == "read").unwrap();
        // The read leg is priced exactly at the model default: predicted
        // time = predicted bytes / (default sigma_f in bytes/us).
        let block_bytes = (q * q * 8) as f64;
        let want_us = read.predicted_units / (report.t_data3.sigma_f * block_bytes / 1e6);
        assert!(
            (read.predicted_us - want_us).abs() <= 1e-9 * want_us.abs(),
            "priced at the model default: {} vs {}",
            read.predicted_us,
            want_us
        );
        // And on a machine with *real* bandwidths the default scales
        // with them — the fix is machine-derived, not another constant.
        let fast = MachineConfig::quad_q32().with_bandwidths(2.0e5, 8.0e5);
        assert_eq!(default_sigma_f(&fast, 0.1), 2.0e4);

        // The Option round-trips as null through the report JSON.
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"sigma_f_blocks_per_s\":null"));
        let back: OocReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.sigma_f_blocks_per_s, None);
        assert_eq!(back.t_data3.sigma_f, report.t_data3.sigma_f);
    }

    #[test]
    fn cancelled_multiply_cleans_up_and_pool_keeps_serving() {
        let dir = tmp("cancel");
        let a_path = dir.join("a.tiled");
        let b_path = dir.join("b.tiled");
        let c_path = dir.join("c.tiled");
        let (m, z, n, q) = (6u32, 5u32, 4u32, 4usize);
        write_pseudo_random(&a_path, m, z, q, 1).unwrap();
        write_pseudo_random(&b_path, z, n, q, 2).unwrap();
        let opts = OocOpts::new(24 * (q * q * 8) as u64);
        let token = CancelToken::new();
        token.cancel();
        let err = ooc_multiply_cancellable(&a_path, &b_path, &c_path, &opts, &token).unwrap_err();
        assert!(matches!(err, OocError::Cancelled), "{err}");
        assert!(!c_path.exists(), "partial output removed");
        // The same process (same rayon pool, fresh prefetcher) serves
        // the next, uncancelled job to completion, bit-identically.
        let live = CancelToken::new();
        let report = ooc_multiply_cancellable(&a_path, &b_path, &c_path, &opts, &live).unwrap();
        assert!(report.within_budget);
        assert_eq!(ooc_verify(&a_path, &b_path, &c_path, opts.variant, &opts.machine).unwrap(), 0);
    }

    #[test]
    fn report_serializes_and_traces() {
        let dir = tmp("report");
        let a_path = dir.join("a.tiled");
        let b_path = dir.join("b.tiled");
        let c_path = dir.join("c.tiled");
        write_pseudo_random(&a_path, 4, 4, 4, 1).unwrap();
        write_pseudo_random(&b_path, 4, 4, 4, 2).unwrap();
        let opts = OocOpts::new(10 * 4 * 4 * 8);
        let report = ooc_multiply(&a_path, &b_path, &c_path, &opts).unwrap();
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"within_budget\""));
        assert!(json.contains("\"stall_seconds\""));
        assert!(json.contains("\"bytes_read\""));
        let back: OocReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.staging, report.staging);
        assert!(report.t_data3.total() > 0.0);
        let trace = chrome_trace(&report);
        assert!(trace.contains("\"io 0\""), "I/O lane present");
        assert!(trace.contains("\"compute\""), "compute lane present");
        assert!(trace.contains("bytes_read"), "counter track present");
        assert!(trace.contains("A[i=0,k=0]"), "panel span labeled");
    }
}
