//! The double-buffered prefetch pipeline: dedicated I/O threads stream
//! panels from [`TiledFile`]s through a bounded ring of reusable buffers
//! into the compute loop.
//!
//! Memory is bounded by construction: the pool owns a fixed number of
//! panel buffers sized for the largest staged panel, and an I/O thread
//! *first* takes a free buffer (blocking on a condvar when compute lags —
//! that wait is the backpressure) and only then claims the next staging
//! request. Claiming in that order keeps the in-flight set aligned with
//! the staging order, so the earliest panel the compute side is waiting
//! for is always either staged or in flight — the pipeline cannot
//! deadlock however threads interleave.
//!
//! Panels may complete out of order across threads; the compute side
//! reorders them with a min-heap keyed on sequence number (bounded by the
//! pool size, since every queued panel holds a buffer). Buffers return to
//! the pool via [`Prefetcher::recycle`], waking stalled I/O threads.

use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use mmc_obs::span::{self, SpanKind};
use serde::{Deserialize, Serialize};

use crate::tiled::{TiledError, TiledFile};

/// One panel to stage: a rectangle of blocks from one source file.
#[derive(Clone, Debug)]
pub struct StageRequest {
    /// Position in the staging order; panels are handed to compute in
    /// ascending `seq`.
    pub seq: usize,
    /// Index into the prefetcher's file table.
    pub file: usize,
    /// Top-left block row of the panel.
    pub bi0: u32,
    /// Top-left block column of the panel.
    pub bj0: u32,
    /// Panel height in blocks.
    pub rows: u32,
    /// Panel width in blocks.
    pub cols: u32,
    /// Human-readable tag for traces, e.g. `A[i=0,k=2]`.
    pub label: String,
}

/// A staged panel: the filled buffer plus provenance and I/O timing.
#[derive(Debug)]
pub struct StagedPanel {
    /// The request this panel answers.
    pub seq: usize,
    /// Panel height in blocks.
    pub rows: u32,
    /// Panel width in blocks.
    pub cols: u32,
    /// Block-major contents, `rows·cols·q²` elements. Return the
    /// allocation with [`Prefetcher::recycle`] when done.
    pub data: Vec<f64>,
    /// Bytes read from disk for this panel.
    pub bytes: u64,
    /// Wall-clock seconds the positioned reads took.
    pub io_seconds: f64,
}

/// One I/O span, for the flight recorder's per-thread I/O lanes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IoSpan {
    /// Which I/O thread issued the read.
    pub thread: usize,
    /// Staging sequence number.
    pub seq: usize,
    /// Trace label (from the request).
    pub label: String,
    /// Microseconds from pipeline start to read start.
    pub start_us: u64,
    /// Read duration in microseconds.
    pub dur_us: u64,
    /// Bytes read.
    pub bytes: u64,
}

/// Aggregate pipeline statistics, reported in the JSON metrics snapshot.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PrefetchStats {
    /// Total bytes read from tiled files.
    pub bytes_read: u64,
    /// Panels staged through the ring.
    pub panels_staged: u64,
    /// Seconds the compute side spent waiting for a panel (prefetch
    /// stall — disk is the bottleneck).
    pub stall_seconds: f64,
    /// Seconds I/O threads spent waiting for a free buffer
    /// (backpressure — compute is the bottleneck).
    pub buffer_wait_seconds: f64,
    /// Summed wall-clock seconds of the positioned reads.
    pub io_seconds: f64,
    /// Peak bytes checked out of the buffer pool at once: the measured
    /// resident panel memory, compared against the budget.
    pub peak_resident_bytes: u64,
    /// Per-read spans for trace export.
    pub io_spans: Vec<IoSpan>,
}

struct Shared {
    files: Vec<Arc<TiledFile>>,
    queue: Mutex<VecDeque<StageRequest>>,
    pool: Mutex<Vec<Vec<f64>>>,
    pool_cv: Condvar,
    shutdown: AtomicBool,
    bytes_read: AtomicU64,
    // Nanosecond counters; f64 addition under a lock would also work but
    // atomics keep the hot path lock-free.
    buffer_wait_ns: AtomicU64,
    io_ns: AtomicU64,
    checked_out_bytes: AtomicU64,
    peak_resident_bytes: AtomicU64,
    spans: Mutex<Vec<IoSpan>>,
    epoch: Instant,
    // Trace job of the spawning (compute) thread, stamped onto the I/O
    // threads' recorder spans — workers cannot see the caller's
    // thread-local job.
    job: u64,
}

impl Shared {
    fn note_checkout(&self, bytes: u64) {
        let now = self.checked_out_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_resident_bytes.fetch_max(now, Ordering::Relaxed);
    }
}

/// Min-heap entry ordered by sequence number.
struct Pending(StagedPanel);

impl PartialEq for Pending {
    fn eq(&self, other: &Pending) -> bool {
        self.0.seq == other.0.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Pending) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Pending) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the smallest seq on top.
        other.0.seq.cmp(&self.0.seq)
    }
}

/// The pipeline handle held by the compute loop.
pub struct Prefetcher {
    shared: Arc<Shared>,
    rx: mpsc::Receiver<(usize, Result<StagedPanel, TiledError>)>,
    workers: Vec<JoinHandle<()>>,
    reorder: BinaryHeap<Pending>,
    next_seq: usize,
    total: usize,
    stall_seconds: f64,
    panels_staged: u64,
    failed: bool,
}

impl Prefetcher {
    /// Launch `io_threads` staging threads over `requests` (which must be
    /// numbered `0..requests.len()` in `seq`), with a pool of
    /// `pool_buffers` reusable buffers of `panel_elems` elements each.
    ///
    /// `pool_buffers` bounds resident panel memory at
    /// `pool_buffers · panel_elems · 8` bytes; it must be at least
    /// `held + 1` where `held` is the most panels the compute loop keeps
    /// un-recycled at once (two for an A/B panel pair).
    pub fn spawn(
        files: Vec<Arc<TiledFile>>,
        requests: Vec<StageRequest>,
        pool_buffers: usize,
        io_threads: usize,
        panel_elems: usize,
    ) -> Prefetcher {
        assert!(io_threads >= 1, "need at least one I/O thread");
        assert!(pool_buffers >= 3, "double buffering needs >= 3 panel buffers");
        for (i, r) in requests.iter().enumerate() {
            assert_eq!(r.seq, i, "requests must be pre-sorted by seq");
            assert!(r.file < files.len(), "request names unknown file {}", r.file);
            let q = files[r.file].header().q;
            assert!(
                r.rows as usize * r.cols as usize * q * q <= panel_elems,
                "panel {} exceeds the buffer size",
                r.label
            );
        }
        let total = requests.len();
        let shared = Arc::new(Shared {
            files,
            queue: Mutex::new(requests.into()),
            pool: Mutex::new((0..pool_buffers).map(|_| vec![0.0; panel_elems]).collect()),
            pool_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            bytes_read: AtomicU64::new(0),
            buffer_wait_ns: AtomicU64::new(0),
            io_ns: AtomicU64::new(0),
            checked_out_bytes: AtomicU64::new(0),
            peak_resident_bytes: AtomicU64::new(0),
            spans: Mutex::new(Vec::new()),
            epoch: Instant::now(),
            job: span::current_job(),
        });
        let (tx, rx) = mpsc::channel();
        let workers = (0..io_threads)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                let tx = tx.clone();
                std::thread::Builder::new()
                    .name(format!("mmc-ooc-io-{tid}"))
                    .spawn(move || worker(tid, &shared, &tx))
                    .expect("spawn I/O thread")
            })
            .collect();
        Prefetcher {
            shared,
            rx,
            workers,
            reorder: BinaryHeap::new(),
            next_seq: 0,
            total,
            stall_seconds: 0.0,
            panels_staged: 0,
            failed: false,
        }
    }

    /// The next panel in staging order, blocking (and counting the stall)
    /// until its I/O completes. `None` once every request is delivered.
    ///
    /// Not an `Iterator`: the caller must hand buffers back through
    /// [`Prefetcher::recycle`] between calls, which borrows `self`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Result<StagedPanel, TiledError>> {
        if self.failed || self.next_seq == self.total {
            return None;
        }
        loop {
            if let Some(p) = self.reorder.peek() {
                if p.0.seq == self.next_seq {
                    self.next_seq += 1;
                    self.panels_staged += 1;
                    return Some(Ok(self.reorder.pop().unwrap().0));
                }
            }
            let start = Instant::now();
            let stall_start = if span::enabled() { span::now_ns() } else { 0 };
            let msg = self.rx.recv();
            let stalled = start.elapsed();
            self.stall_seconds += stalled.as_secs_f64();
            crate::metrics::stall_us().observe(stalled.as_micros() as u64);
            if span::enabled() {
                // Perfect prefetch overlap predicts zero stall, so
                // pred = 0 and val carries the measured nanoseconds.
                let ns = stalled.as_nanos() as u64;
                span::emit(
                    self.shared.job,
                    SpanKind::Stall,
                    None,
                    stall_start,
                    ns,
                    0,
                    ns,
                    [self.next_seq as u32, 0, 0, 0],
                );
            }
            match msg {
                Ok((_, Ok(panel))) => self.reorder.push(Pending(panel)),
                Ok((_, Err(e))) => {
                    self.failed = true;
                    return Some(Err(e));
                }
                Err(mpsc::RecvError) => {
                    // Workers gone without delivering next_seq: only
                    // reachable after an error already surfaced.
                    self.failed = true;
                    return None;
                }
            }
        }
    }

    /// Return a panel buffer to the pool, waking any stalled I/O thread.
    pub fn recycle(&self, buf: Vec<f64>) {
        self.shared.checked_out_bytes.fetch_sub((buf.capacity() * 8) as u64, Ordering::Relaxed);
        let mut pool = self.shared.pool.lock().unwrap();
        pool.push(buf);
        crate::metrics::pool_free().set(pool.len() as i64);
        drop(pool);
        self.shared.pool_cv.notify_one();
    }

    /// Stop the I/O threads and collect the pipeline statistics.
    pub fn finish(mut self) -> PrefetchStats {
        self.join_workers();
        let shared = &self.shared;
        PrefetchStats {
            bytes_read: shared.bytes_read.load(Ordering::Relaxed),
            panels_staged: self.panels_staged,
            stall_seconds: self.stall_seconds,
            buffer_wait_seconds: shared.buffer_wait_ns.load(Ordering::Relaxed) as f64 / 1e9,
            io_seconds: shared.io_ns.load(Ordering::Relaxed) as f64 / 1e9,
            peak_resident_bytes: shared.peak_resident_bytes.load(Ordering::Relaxed),
            io_spans: std::mem::take(&mut *shared.spans.lock().unwrap()),
        }
    }

    fn join_workers(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.pool_cv.notify_all();
        // Drain the channel so no worker blocks on a full... (mpsc is
        // unbounded, so draining is only about dropping buffers early).
        while self.rx.try_recv().is_ok() {}
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.join_workers();
        }
    }
}

fn worker(
    tid: usize,
    shared: &Shared,
    tx: &mpsc::Sender<(usize, Result<StagedPanel, TiledError>)>,
) {
    loop {
        // Take a free buffer FIRST (see module docs: claiming the buffer
        // before the request keeps in-flight panels aligned with the
        // staging order, which is what rules out deadlock).
        let stage_start = if span::enabled() { span::now_ns() } else { 0 };
        let wait_start = Instant::now();
        let mut buf = {
            let mut pool = shared.pool.lock().unwrap();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(b) = pool.pop() {
                    crate::metrics::pool_free().set(pool.len() as i64);
                    break b;
                }
                pool = shared.pool_cv.wait(pool).unwrap();
            }
        };
        let waited = wait_start.elapsed();
        shared.buffer_wait_ns.fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
        crate::metrics::buffer_wait_us().observe(waited.as_micros() as u64);
        shared.note_checkout((buf.capacity() * 8) as u64);

        let req = {
            let mut queue = shared.queue.lock().unwrap();
            let req = queue.pop_front();
            crate::metrics::queue_depth().set(queue.len() as i64);
            req
        };
        let Some(req) = req else {
            // No work left: put the buffer back (dropping it would be
            // fine, returning it keeps the pool's inventory intact) and
            // retire this thread.
            shared.checked_out_bytes.fetch_sub((buf.capacity() * 8) as u64, Ordering::Relaxed);
            shared.pool.lock().unwrap().push(buf);
            shared.pool_cv.notify_one();
            return;
        };

        let file = &shared.files[req.file];
        let q = file.header().q;
        let elems = req.rows as usize * req.cols as usize * q * q;
        buf.resize(elems, 0.0);
        let read_start = if span::enabled() { span::now_ns() } else { 0 };
        let io_start = Instant::now();
        let result = file.read_panel(req.bi0, req.bj0, req.rows, req.cols, &mut buf[..elems]);
        let dur = io_start.elapsed();
        shared.io_ns.fetch_add(dur.as_nanos() as u64, Ordering::Relaxed);
        crate::metrics::read_us().observe(dur.as_micros() as u64);
        if span::enabled() {
            let requested = (elems * 8) as u64;
            let got = *result.as_ref().unwrap_or(&0);
            span::emit(
                shared.job,
                SpanKind::Read,
                Some(tid as u32),
                read_start,
                dur.as_nanos() as u64,
                requested,
                got,
                [req.file as u32, req.seq as u32, req.rows, req.cols],
            );
            span::emit(
                shared.job,
                SpanKind::Stage,
                Some(tid as u32),
                stage_start,
                span::now_ns().saturating_sub(stage_start),
                requested,
                got,
                [req.file as u32, req.seq as u32, req.rows, req.cols],
            );
        }

        let msg = match result {
            Ok(bytes) => {
                shared.bytes_read.fetch_add(bytes, Ordering::Relaxed);
                crate::metrics::bytes_read().add(bytes);
                crate::metrics::panels_staged().add(1);
                shared.spans.lock().unwrap().push(IoSpan {
                    thread: tid,
                    seq: req.seq,
                    label: req.label.clone(),
                    start_us: io_start.duration_since(shared.epoch).as_micros() as u64,
                    dur_us: dur.as_micros() as u64,
                    bytes,
                });
                Ok(StagedPanel {
                    seq: req.seq,
                    rows: req.rows,
                    cols: req.cols,
                    data: buf,
                    bytes,
                    io_seconds: dur.as_secs_f64(),
                })
            }
            Err(e) => {
                shared.checked_out_bytes.fetch_sub((buf.capacity() * 8) as u64, Ordering::Relaxed);
                Err(e)
            }
        };
        let errored = msg.is_err();
        if tx.send((req.seq, msg)).is_err() || errored {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiled::write_matrix;
    use mmc_exec::BlockMatrix;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmc-pipe-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("m.tiled")
    }

    fn requests_for(rows: u32, cols: u32, ph: u32, pw: u32) -> Vec<StageRequest> {
        let mut reqs = Vec::new();
        for bi0 in (0..rows).step_by(ph as usize) {
            for bj0 in (0..cols).step_by(pw as usize) {
                let seq = reqs.len();
                reqs.push(StageRequest {
                    seq,
                    file: 0,
                    bi0,
                    bj0,
                    rows: ph.min(rows - bi0),
                    cols: pw.min(cols - bj0),
                    label: format!("P[{bi0},{bj0}]"),
                });
            }
        }
        reqs
    }

    #[test]
    fn streams_every_panel_in_order_with_bounded_memory() {
        let path = tmp("stream");
        let q = 4;
        let m = BlockMatrix::pseudo_random(7, 5, q, 3);
        write_matrix(&path, &m).unwrap();
        let file = Arc::new(TiledFile::open(&path).unwrap());
        let reqs = requests_for(7, 5, 3, 2);
        let n_reqs = reqs.len();
        let panel_elems = 3 * 2 * q * q;
        let pool_buffers = 3;
        let mut pf =
            Prefetcher::spawn(vec![Arc::clone(&file)], reqs.clone(), pool_buffers, 2, panel_elems);
        let mut seen = 0usize;
        while let Some(panel) = pf.next() {
            let panel = panel.unwrap();
            assert_eq!(panel.seq, seen, "panels arrive in staging order");
            let req = &reqs[panel.seq];
            let got = BlockMatrix::from_vec(
                panel.rows,
                panel.cols,
                q,
                panel.data[..panel.rows as usize * panel.cols as usize * q * q].to_vec(),
            );
            for bi in 0..panel.rows {
                for bj in 0..panel.cols {
                    assert_eq!(got.block(bi, bj), m.block(req.bi0 + bi, req.bj0 + bj));
                }
            }
            pf.recycle(panel.data);
            seen += 1;
        }
        assert_eq!(seen, n_reqs);
        let stats = pf.finish();
        assert_eq!(stats.panels_staged, n_reqs as u64);
        assert_eq!(stats.io_spans.len(), n_reqs);
        assert!(
            stats.peak_resident_bytes <= (pool_buffers * panel_elems * 8) as u64,
            "peak {} exceeds pool bound",
            stats.peak_resident_bytes
        );
        // Every block of the matrix crossed the pipeline exactly once.
        assert_eq!(stats.bytes_read, 7 * 5 * (q * q * 8) as u64);
    }

    #[test]
    fn slow_consumer_never_deadlocks() {
        // Many more panels than buffers, multiple I/O threads, and a
        // consumer that holds two panels at a time (the A/B pattern).
        let path = tmp("slow");
        let q = 2;
        let m = BlockMatrix::pseudo_random(16, 16, q, 5);
        write_matrix(&path, &m).unwrap();
        let file = Arc::new(TiledFile::open(&path).unwrap());
        let reqs = requests_for(16, 16, 2, 2); // 64 panels
        let mut pf = Prefetcher::spawn(vec![file], reqs, 3, 3, 2 * 2 * q * q);
        let mut held: Vec<Vec<f64>> = Vec::new();
        let mut count = 0;
        while let Some(panel) = pf.next() {
            held.push(panel.unwrap().data);
            if held.len() == 2 {
                for b in held.drain(..) {
                    pf.recycle(b);
                }
            }
            count += 1;
        }
        assert_eq!(count, 64);
        let stats = pf.finish();
        assert_eq!(stats.panels_staged, 64);
    }

    #[test]
    fn io_error_surfaces_to_compute() {
        let path = tmp("err");
        let q = 3;
        let m = BlockMatrix::pseudo_random(4, 4, q, 9);
        write_matrix(&path, &m).unwrap();
        // Truncate the file *after* opening: header validation passed on
        // the full file, but panel reads past the new EOF must fail
        // cleanly (fs::write truncates the same inode in place, so the
        // open handle sees the shorter file).
        let file = Arc::new(TiledFile::open(&path).unwrap());
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let reqs = requests_for(4, 4, 2, 2);
        let mut pf = Prefetcher::spawn(vec![file], reqs, 3, 1, 2 * 2 * q * q);
        let mut saw_err = false;
        while let Some(panel) = pf.next() {
            match panel {
                Ok(p) => pf.recycle(p.data),
                Err(e) => {
                    saw_err = true;
                    assert!(e.to_string().contains(&path.display().to_string()));
                    break;
                }
            }
        }
        assert!(saw_err, "truncated read must surface an error");
    }

    #[test]
    fn dropping_mid_stream_joins_workers() {
        let path = tmp("drop");
        let q = 2;
        let m = BlockMatrix::pseudo_random(8, 8, q, 1);
        write_matrix(&path, &m).unwrap();
        let file = Arc::new(TiledFile::open(&path).unwrap());
        let reqs = requests_for(8, 8, 2, 2);
        let mut pf = Prefetcher::spawn(vec![file], reqs, 3, 2, 2 * 2 * q * q);
        let p = pf.next().unwrap().unwrap();
        pf.recycle(p.data);
        drop(pf); // must not hang on stalled workers
    }
}
