//! Minimal vendored serde-compatible serialization facade.
//!
//! The build environment for this workspace is fully offline, so the real
//! `serde` crate cannot be fetched from crates.io. This stub provides the
//! small slice of serde's surface the workspace actually uses — derive
//! macros for structs and enums, plus JSON-friendly primitive and
//! container impls — over a simple [`Value`] tree data model instead of
//! serde's streaming visitor architecture.
//!
//! `serde_json` (also vendored) prints and parses this [`Value`] tree.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the data model every type serializes into.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative (or any signed) integer.
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, as ordered key/value pairs (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` for other variants or absent keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }

    /// The value as `f64` if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as object entries if it is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Whether this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Whether this is any kind of number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Int(_) | Value::UInt(_) | Value::Float(_))
    }
}

/// Serialization / deserialization failure.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error carrying `msg`.
    pub fn custom(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`] tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Derive-macro helper: fetch a required object field.
#[doc(hidden)]
pub fn __get_field<'v>(value: &'v Value, name: &str) -> Result<&'v Value, Error> {
    match value {
        Value::Object(_) => {
            value.get(name).ok_or_else(|| Error::custom(format!("missing field `{name}`")))
        }
        other => {
            Err(Error::custom(format!("expected object with field `{name}`, found {other:?}")))
        }
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let u = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!(
                        concat!("expected ", stringify!($t), ", found {:?}"), value)))?;
                <$t>::try_from(u).map_err(|_| Error::custom(format!(
                    concat!("value {} out of range for ", stringify!($t)), u)))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let i = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!(
                        concat!("expected ", stringify!($t), ", found {:?}"), value)))?;
                <$t>::try_from(i).map_err(|_| Error::custom(format!(
                    concat!("value {} out of range for ", stringify!($t)), i)))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::custom(format!("expected f64, found {value:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(value)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value.as_bool().ok_or_else(|| Error::custom(format!("expected bool, found {value:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, found {value:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {value:?}")))?
            .iter()
            .map(Deserialize::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+) with $len:expr;)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let arr = value
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected array, found {value:?}")))?;
                if arr.len() != $len {
                    return Err(Error::custom(format!(
                        "expected array of length {}, found {}", $len, arr.len())));
                }
                Ok(($($t::from_value(&arr[$i])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A0: 0) with 1;
    (A0: 0, A1: 1) with 2;
    (A0: 0, A1: 1, A2: 2) with 3;
    (A0: 0, A1: 1, A2: 2, A3: 3) with 4;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.0)];
        let back: Vec<(f64, f64)> = Vec::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn get_field_errors_are_descriptive() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert!(__get_field(&v, "a").is_ok());
        assert!(__get_field(&v, "b").unwrap_err().to_string().contains("missing field"));
    }
}
