//! Derive macros for the vendored serde stub.
//!
//! Hand-rolled token parsing (no `syn`/`quote` — the build environment is
//! offline). Supports the shapes this workspace actually derives:
//!
//! * structs with named fields, honoring `#[serde(default)]` /
//!   `#[serde(default = "path")]` on individual fields (missing fields
//!   fall back instead of erroring);
//! * tuple structs (newtype → transparent, otherwise an array);
//! * enums with unit and newtype variants (externally tagged, like serde),
//!   honoring `#[serde(rename_all = "snake_case")]` on the container.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::str::FromStr;

#[derive(Debug)]
enum Shape {
    /// Fields carry an optional default: `None` (required), or
    /// `Some(expr)` — the call that produces the fallback value.
    NamedStruct {
        name: String,
        fields: Vec<(String, Option<String>)>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<(String, bool)>,
        snake_case: bool,
    },
}

/// Derive `serde::Serialize` (value-tree flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::NamedStruct { name, fields } => {
            let mut entries = String::new();
            for (f, _) in fields {
                entries.push_str(&format!(
                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let mut entries = String::new();
            for i in 0..*arity {
                entries.push_str(&format!("::serde::Serialize::to_value(&self.{i}),"));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants, snake_case } => {
            let mut arms = String::new();
            for (v, has_payload) in variants {
                let tag = wire_name(v, *snake_case);
                if *has_payload {
                    arms.push_str(&format!(
                        "{name}::{v}(__inner) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{tag}\"), \
                              ::serde::Serialize::to_value(__inner))]),"
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{tag}\")),"
                    ));
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    TokenStream::from_str(&code).expect("serde_derive: generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` (value-tree flavor).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let code = match &shape {
        Shape::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for (f, default) in fields {
                match default {
                    None => inits.push_str(&format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::__get_field(value, \"{f}\")?)?,"
                    )),
                    Some(fallback) => inits.push_str(&format!(
                        "{f}: match ::serde::__get_field(value, \"{f}\") {{\n\
                             ::std::result::Result::Ok(__v) => \
                                 ::serde::Deserialize::from_value(__v)?,\n\
                             ::std::result::Result::Err(_) => {fallback},\n\
                         }},"
                    )),
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let mut inits = String::new();
            for i in 0..*arity {
                inits.push_str(&format!("::serde::Deserialize::from_value(&__arr[{i}])?,"));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __arr = value.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for tuple struct {name}\"))?;\n\
                         if __arr.len() != {arity} {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                                 \"wrong tuple-struct arity for {name}\"));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}({inits}))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants, snake_case } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for (v, has_payload) in variants {
                let tag = wire_name(v, *snake_case);
                if *has_payload {
                    payload_arms.push_str(&format!(
                        "\"{tag}\" => ::std::result::Result::Ok(\
                             {name}::{v}(::serde::Deserialize::from_value(__inner)?)),"
                    ));
                } else {
                    unit_arms
                        .push_str(&format!("\"{tag}\" => ::std::result::Result::Ok({name}::{v}),"));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                                     ::std::format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__fields[0];\n\
                                 match __tag.as_str() {{\n\
                                     {payload_arms}\n\
                                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                                         ::std::format!(\"unknown {name} variant {{__other:?}}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"invalid {name} value {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    TokenStream::from_str(&code).expect("serde_derive: generated Deserialize impl must parse")
}

/// CamelCase → snake_case, matching serde's `rename_all = "snake_case"`.
fn snake(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

/// Recognize `#[serde(default)]` / `#[serde(default = "path")]` in the
/// stringified attribute group, returning the fallback expression.
fn parse_field_default(attr_text: &str) -> Option<String> {
    // Only `#[serde(...)]` attributes — doc comments arrive as
    // `#[doc = "..."]` and must not be scanned for keywords.
    if !attr_text.trim_start().starts_with("serde") || !attr_text.contains("default") {
        return None;
    }
    let after = attr_text.split("default").nth(1)?;
    // `default = "Type::func"` — the quoted path is called; bare
    // `default` falls back to `Default::default()`.
    let mut quoted = after.trim_start().strip_prefix('=').map(|rest| {
        let rest = rest.trim_start();
        let rest = rest.strip_prefix('"').unwrap_or(rest);
        rest.split('"').next().unwrap_or("").to_string()
    });
    if let Some(path) = quoted.take_if(|p| !p.is_empty()) {
        Some(format!("{path}()"))
    } else {
        Some("::std::default::Default::default()".to_string())
    }
}

fn wire_name(variant: &str, snake_case: bool) -> String {
    if snake_case {
        snake(variant)
    } else {
        variant.to_string()
    }
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut snake_case = false;

    // Container attributes and visibility come before the keyword.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    let text = g.stream().to_string();
                    if text.contains("serde")
                        && text.contains("rename_all")
                        && text.contains("snake_case")
                    {
                        snake_case = true;
                    }
                }
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break;
            }
            Some(_) => i += 1,
            None => panic!("serde_derive: no struct or enum found"),
        }
    }

    let is_enum = matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "enum");
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;

    // Generics are not supported (nothing in the workspace derives them).
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic types are not supported ({name})");
        }
    }

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break Some(g.clone())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
                let arity = split_top_level(g.stream().into_iter().collect()).len();
                return Shape::TupleStruct { name, arity };
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => break None,
            Some(_) => i += 1,
            None => break None,
        }
    };
    let Some(body) = body else {
        panic!("serde_derive stub: unit structs are not supported ({name})")
    };

    if is_enum {
        let mut variants = Vec::new();
        for entry in split_top_level(body.stream().into_iter().collect()) {
            let mut j = 0;
            // Skip attributes / doc comments.
            while let Some(TokenTree::Punct(p)) = entry.get(j) {
                if p.as_char() == '#' {
                    j += 2;
                } else {
                    break;
                }
            }
            let Some(TokenTree::Ident(vn)) = entry.get(j) else {
                continue; // trailing comma artifact
            };
            let vname = vn.to_string();
            let has_payload = matches!(
                entry.get(j + 1),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            );
            if matches!(
                entry.get(j + 1),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace
            ) {
                panic!("serde_derive stub: struct variants are not supported ({name}::{vname})");
            }
            variants.push((vname, has_payload));
        }
        Shape::Enum { name, variants, snake_case }
    } else {
        let mut fields = Vec::new();
        for entry in split_top_level(body.stream().into_iter().collect()) {
            let mut j = 0;
            let mut default = None;
            loop {
                match entry.get(j) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                        if let Some(TokenTree::Group(g)) = entry.get(j + 1) {
                            if let Some(d) = parse_field_default(&g.stream().to_string()) {
                                default = Some(d);
                            }
                        }
                        j += 2;
                    }
                    Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                        j += 1;
                        if let Some(TokenTree::Group(g)) = entry.get(j) {
                            if g.delimiter() == Delimiter::Parenthesis {
                                j += 1;
                            }
                        }
                    }
                    _ => break,
                }
            }
            if let Some(TokenTree::Ident(fname)) = entry.get(j) {
                fields.push((fname.to_string(), default));
            }
        }
        Shape::NamedStruct { name, fields }
    }
}

/// Split a token list on commas at angle-bracket depth zero (so commas
/// inside `Vec<(f64, f64)>`-style generic arguments don't split fields;
/// parenthesized tuples are single groups and hide their commas anyway).
fn split_top_level(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}
