//! Minimal vendored JSON printer and parser over the serde stub's
//! [`Value`] tree. Offline replacement for the real `serde_json`: supports
//! `to_string` / `to_string_pretty` / `to_writer` / `to_writer_pretty` /
//! `from_str`, which is the full surface this workspace uses.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON serialization / deserialization failure.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    print_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty-printed (2-space indent) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    print_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize `value` as compact JSON into `writer`.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes()).map_err(|e| Error::new(e.to_string()))
}

/// Serialize `value` as pretty-printed JSON into `writer`.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let s = to_string_pretty(value)?;
    writer.write_all(s.as_bytes()).map_err(|e| Error::new(e.to_string()))
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

/// Deserialize a `T` from a reader (reads to end first; convenience only).
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut s = String::new();
    reader.read_to_string(&mut s).map_err(|e| Error::new(e.to_string()))?;
    from_str(&s)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn print_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // Keep it recognizable as a float where serde_json would.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                // serde_json errors on non-finite floats; emit null instead
                // so diagnostics stay printable.
                out.push_str("null");
            }
        }
        Value::Str(s) => print_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                print_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                print_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                print_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn print_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected {:?} at offset {}", b as char, self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character {:?} at offset {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid keyword at offset {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!("expected ',' or '}}' at offset {}", self.pos)))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c).ok_or_else(|| Error::new("invalid codepoint"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| Error::new("invalid codepoint"))?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape \\{}", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Value::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5e1").unwrap(), 25.0);
        assert_eq!(from_str::<String>("\"a\\nb\\u0041\"").unwrap(), "a\nbA");
    }

    #[test]
    fn round_trips_containers() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.5)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1.0,2.0],[3.0,4.5]]");
        let back: Vec<(f64, f64)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_into_value_tree() {
        let v: Value = from_str("{\"a\": [1, true, null], \"b\": \"x\"}").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn pretty_printer_indents() {
        let v: Value = from_str("{\"a\":[1,2]}").unwrap();
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("{\n  \"a\": [\n    1,\n    2\n  ]\n}"), "{s}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
