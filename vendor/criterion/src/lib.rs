//! Minimal vendored benchmarking facade (offline build stub).
//!
//! Mirrors the narrow slice of the `criterion` API the workspace benches
//! use: `Criterion::benchmark_group`, `sample_size`, `throughput`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros.
//! Each benchmark runs a small fixed number of timed iterations and prints
//! the best wall-clock time — enough to smoke-test the benches offline,
//! not a statistics engine.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed iterations per benchmark (beyond one warmup).
const ITERS: u32 = 3;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), throughput: None }
    }
}

/// Units processed per iteration, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark (`function/parameter`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { full: format!("{}/{}", function.into(), parameter) }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Record the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl ToString, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.to_string());
        run_bench(&label, self.throughput, |b| f(b));
        self
    }

    /// Run a benchmark that receives an input value by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.full);
        run_bench(&label, self.throughput, |b| f(b, input));
        self
    }

    /// Finish the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    best: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, keeping the best of a few runs.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup, then ITERS timed runs.
        black_box(routine());
        for _ in 0..ITERS {
            let start = Instant::now();
            black_box(routine());
            let took = start.elapsed();
            if self.best.is_none_or(|b| took < b) {
                self.best = Some(took);
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher { best: None };
    f(&mut bencher);
    match bencher.best {
        Some(best) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) if best.as_secs_f64() > 0.0 => {
                    format!("  ({:.3e} elem/s)", n as f64 / best.as_secs_f64())
                }
                Some(Throughput::Bytes(n)) if best.as_secs_f64() > 0.0 => {
                    format!("  ({:.3e} B/s)", n as f64 / best.as_secs_f64())
                }
                _ => String::new(),
            };
            println!("bench {label:<48} best {best:?}{rate}");
        }
        None => println!("bench {label:<48} (no iterations)"),
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(10);
        g.throughput(Throughput::Elements(4));
        g.bench_function("sum", |b| b.iter(|| (0u64..4).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &k| b.iter(|| k * 7));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_all_targets() {
        benches();
    }
}
