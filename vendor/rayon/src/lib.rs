//! Minimal vendored rayon-compatible data-parallelism shim.
//!
//! The build environment for this workspace is offline, so the real
//! `rayon` cannot be fetched. This stub covers the surface the workspace
//! uses — `par_iter()` on slices, `into_par_iter()` on integer ranges,
//! `for_each` / `map` / `find_any` / `collect`,
//! `ThreadPoolBuilder::install`, and
//! `current_thread_index` — implemented with `std::thread::scope` workers
//! pulling indices from an atomic counter (work stealing at the crudest
//! possible granularity, which is plenty for block-sized tasks).
//!
//! Parallel iterators here are *indexed*: every source exposes random
//! access, workers claim indices from a shared counter, and adapter
//! chains (`map`) stay random-access. A panicking worker flags the shared
//! stop so siblings quit claiming, and its original payload is rethrown
//! to the caller from an explicit join.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Index of the current worker within its pool, if any.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The index of the current worker thread inside a parallel call, or
/// `None` outside of one (mirrors `rayon::current_thread_index`).
pub fn current_thread_index() -> Option<usize> {
    WORKER_INDEX.with(|w| w.get())
}

/// Number of threads parallel calls use right now: the installed pool's
/// size if inside [`ThreadPool::install`], else available parallelism.
pub fn current_num_threads() -> usize {
    POOL_THREADS
        .with(|p| p.get())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Builder for a [`ThreadPool`] (configuration shim).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type of [`ThreadPoolBuilder::build`]; building never fails here.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Cap the pool at `n` threads (0 means the default).
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = self
            .num_threads
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        Ok(ThreadPool { threads })
    }
}

/// A lightweight pool handle: parallel calls under [`ThreadPool::install`]
/// use this pool's thread count. No threads are parked in the stub — they
/// are scoped per parallel call.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool as the current one.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|p| p.replace(Some(self.threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|p| p.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }

    /// The pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Random-access parallel iterator: the single trait behind every source
/// and adapter in this stub (rayon splits this across several traits; the
/// prelude glob makes the difference invisible to callers).
pub trait ParallelIterator: Sized + Sync {
    /// Item produced for each index.
    type Item: Send;

    /// Number of items.
    fn pi_len(&self) -> usize;

    /// Produce the item at `index` (`index < pi_len()`).
    fn pi_get(&self, index: usize) -> Self::Item;

    /// Consume every item, in parallel.
    fn for_each<F>(self, op: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        drive(&self, &|item| op(item), &AtomicBool::new(false));
    }

    /// Lazily map each item.
    fn map<R, F>(self, op: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        Map { base: self, op }
    }

    /// Find *some* item matching `predicate` (not necessarily the first).
    fn find_any<P>(self, predicate: P) -> Option<Self::Item>
    where
        P: Fn(&Self::Item) -> bool + Send + Sync,
    {
        let found: Mutex<Option<Self::Item>> = Mutex::new(None);
        let stop = AtomicBool::new(false);
        drive(
            &self,
            &|item| {
                if predicate(&item) {
                    // First writer wins: a worker that raced past the stop
                    // flag must not replace an already-recorded match.
                    let mut slot = found.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(item);
                    }
                    stop.store(true, Ordering::Relaxed);
                }
            },
            &stop,
        );
        found.into_inner().unwrap()
    }

    /// Collect all items into a collection, preserving index order
    /// (rayon's `collect`; `Vec<T>` is the only implementor here).
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Collect all items into a `Vec`, preserving index order.
    ///
    /// Lock-free: `drive` hands each index to exactly one worker, so
    /// every output slot is written exactly once with no shared lock,
    /// and the scope join publishes the writes to the caller.
    fn collect_vec(self) -> Vec<Self::Item> {
        let n = self.pi_len();
        let mut slots: Vec<Option<Self::Item>> = Vec::new();
        slots.resize_with(n, || None);
        struct SlotsPtr<T>(*mut Option<T>);
        // SAFETY: workers write disjoint slots (one index each, see
        // `drive`), so sharing the base pointer across threads is sound.
        unsafe impl<T: Send> Send for SlotsPtr<T> {}
        unsafe impl<T: Send> Sync for SlotsPtr<T> {}
        let ptr = SlotsPtr(slots.as_mut_ptr());
        {
            let ptr = &ptr;
            let indexed = IndexedSource { base: &self };
            drive(
                &indexed,
                &|(i, item)| {
                    // SAFETY: `i < n` and each index is claimed by exactly
                    // one worker, so this slot is written exactly once and
                    // never read concurrently.
                    unsafe { *ptr.0.add(i) = Some(item) };
                },
                &AtomicBool::new(false),
            );
        }
        slots.into_iter().map(|o| o.expect("every index driven")).collect()
    }
}

/// Collections buildable from a parallel iterator (rayon's
/// `FromParallelIterator`, narrowed to the workspace's use).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Build the collection, preserving index order.
    fn from_par_iter<I>(iter: I) -> Self
    where
        I: ParallelIterator<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I>(iter: I) -> Vec<T>
    where
        I: ParallelIterator<Item = T>,
    {
        iter.collect_vec()
    }
}

struct IndexedSource<'a, I> {
    base: &'a I,
}

impl<I: ParallelIterator> ParallelIterator for IndexedSource<'_, I> {
    type Item = (usize, I::Item);
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_get(&self, index: usize) -> Self::Item {
        (index, self.base.pi_get(index))
    }
}

/// Run `op` over all indices of `it` using scoped worker threads.
fn drive<I, F>(it: &I, op: &F, stop: &AtomicBool)
where
    I: ParallelIterator,
    F: Fn(I::Item) + Sync,
{
    let len = it.pi_len();
    if len == 0 {
        return;
    }
    let workers = current_num_threads().min(len);
    if workers <= 1 {
        // Inline on the calling thread, still presenting a worker index.
        let prev = WORKER_INDEX.with(|w| w.replace(Some(0)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                WORKER_INDEX.with(|w| w.set(self.0));
            }
        }
        let _restore = Restore(prev);
        for i in 0..len {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            op(it.pi_get(i));
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let next = &next;
                scope.spawn(move || {
                    WORKER_INDEX.with(|wi| wi.set(Some(w)));
                    // If this worker panics, flag the shared stop so
                    // sibling workers quit claiming indices instead of
                    // running the rest of the iteration; the panic itself
                    // propagates through the explicit join below.
                    struct PanicStop<'a>(&'a AtomicBool);
                    impl Drop for PanicStop<'_> {
                        fn drop(&mut self) {
                            if std::thread::panicking() {
                                self.0.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                    let _panic_stop = PanicStop(stop);
                    loop {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        op(it.pi_get(i));
                    }
                })
            })
            .collect();
        // Join explicitly and rethrow the first worker's own payload —
        // scope's automatic join would replace it with a generic
        // "a scoped thread panicked" message.
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            if let Err(payload) = h.join() {
                panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
    });
}

/// Lazy mapping adapter (see [`ParallelIterator::map`]).
pub struct Map<I, F> {
    base: I,
    op: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Send + Sync,
{
    type Item = R;
    fn pi_len(&self) -> usize {
        self.base.pi_len()
    }
    fn pi_get(&self, index: usize) -> R {
        (self.op)(self.base.pi_get(index))
    }
}

/// Borrowing parallel iterator over a slice (`par_iter()`).
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn pi_len(&self) -> usize {
        self.slice.len()
    }
    fn pi_get(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

/// `par_iter()` entry point (rayon's `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// The borrowing parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowed item type.
    type Item: Send;
    /// Borrow `self` as a parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// `into_par_iter()` entry point (rayon's `IntoParallelIterator`).
pub trait IntoParallelIterator {
    /// The produced parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range {
    ($($t:ty),*) => {$(
        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;
            fn pi_len(&self) -> usize {
                self.len
            }
            fn pi_get(&self, index: usize) -> $t {
                self.start + index as $t
            }
        }
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Iter = RangeIter<$t>;
            type Item = $t;
            fn into_par_iter(self) -> RangeIter<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangeIter { start: self.start, len }
            }
        }
    )*};
}
impl_range!(u32, u64, usize, i32, i64);

impl<T: Send + Clone + Sync> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

/// Owning parallel iterator over a `Vec` (items are cloned out per index;
/// the stub requires `Clone`, which every workspace use satisfies).
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send + Clone + Sync> ParallelIterator for VecIter<T> {
    type Item = T;
    fn pi_len(&self) -> usize {
        self.items.len()
    }
    fn pi_get(&self, index: usize) -> T {
        self.items[index].clone()
    }
}

/// Everything callers normally import (`use rayon::prelude::*`).
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

/// Run two closures, nominally in parallel (sequential in the stub).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn slice_par_iter_for_each_visits_everything() {
        let data: Vec<u64> = (0..1000).collect();
        let sum = AtomicUsize::new(0);
        data.par_iter().for_each(|&x| {
            sum.fetch_add(x as usize, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 999 * 1000 / 2);
    }

    #[test]
    fn range_map_find_any() {
        let hit = (0u32..10_000)
            .into_par_iter()
            .map(|i| if i == 4321 { Err(i) } else { Ok(i) })
            .find_any(|r| r.is_err());
        assert_eq!(hit, Some(Err(4321)));
        let miss = (0u32..100).into_par_iter().map(Ok::<u32, u32>).find_any(|r| r.is_err());
        assert_eq!(miss, None);
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 1);
            // Inline path still reports a worker index during iteration.
            (0usize..4).into_par_iter().for_each(|_| {
                assert_eq!(current_thread_index(), Some(0));
            });
        });
        assert!(current_thread_index().is_none());
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            (0u32..64).into_par_iter().for_each(|i| {
                if i == 13 {
                    panic!("boom");
                }
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn stop_bounds_extra_visits_per_worker() {
        // Every item matches, so each worker's first visit sets the stop
        // flag and its next claim check breaks: the total number of items
        // visited is bounded by the worker count, not the input length.
        let visited = AtomicUsize::new(0);
        let hit = (0usize..100_000).into_par_iter().find_any(|_| {
            visited.fetch_add(1, Ordering::Relaxed);
            true
        });
        assert!(hit.is_some());
        assert!(
            visited.load(Ordering::Relaxed) <= current_num_threads(),
            "visited {} items with {} workers",
            visited.load(Ordering::Relaxed),
            current_num_threads()
        );
    }

    #[test]
    fn find_any_returns_a_match_under_contention() {
        // Many concurrent matches: first write wins, late matchers must
        // not clobber the recorded result with a non-deterministic one —
        // whatever comes back has to satisfy the predicate.
        for _ in 0..50 {
            let hit = (0u32..1_000).into_par_iter().find_any(|&i| i % 7 == 0);
            assert!(matches!(hit, Some(i) if i % 7 == 0), "got {hit:?}");
        }
    }

    #[test]
    fn sibling_panic_stops_other_workers() {
        // A panicking worker flags the shared stop, so siblings quit
        // claiming instead of draining the whole iteration.
        let visited = AtomicUsize::new(0);
        let r = std::panic::catch_unwind(|| {
            (0usize..1_000_000).into_par_iter().for_each(|i| {
                if i == 0 {
                    panic!("first item fails");
                }
                visited.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(r.is_err());
        // Without the panic→stop guard every surviving worker would drain
        // the counter and this would be exactly 999_999.
        assert!(visited.load(Ordering::Relaxed) < 999_999);
    }

    #[test]
    fn collect_panic_propagates_original_payload() {
        // When a worker panics mid-collect, the unwind must carry the
        // worker's own payload out of the scope join — never the
        // "every index driven" expect on a slot the stopped siblings
        // left unwritten.
        let r = std::panic::catch_unwind(|| {
            let _: Vec<u32> = (0u32..10_000)
                .into_par_iter()
                .map(|i| if i == 7 { panic!("slot panic") } else { i })
                .collect();
        });
        let payload = r.expect_err("collect must propagate the worker panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("slot panic"), "unexpected panic payload: {msg:?}");
    }

    #[test]
    fn collect_vec_preserves_order() {
        let v = (0u32..100).into_par_iter().map(|i| i * 2).collect_vec();
        assert_eq!(v, (0u32..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_into_vec_preserves_order_and_drops_cleanly() {
        // Non-Copy items exercise slot writes and drops.
        let v: Vec<String> = (0u32..64).into_par_iter().map(|i| format!("item-{i}")).collect();
        assert_eq!(v.len(), 64);
        assert!(v.iter().enumerate().all(|(i, s)| s == &format!("item-{i}")));
    }
}
