//! Minimal vendored property-testing harness (offline build stub).
//!
//! Implements the slice of the `proptest` API that this workspace uses:
//! the `proptest!` macro with `ident in strategy` arguments, integer /
//! float range strategies, `any::<T>()`, `Just`, `prop_map`, tuple
//! strategies, `proptest::collection::vec`, `prop_oneof!`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Generation is fully deterministic: each test case is driven by a
//! splitmix64 stream seeded from an FNV-1a hash of the test name plus the
//! case index, so failures are reproducible run-to-run without any
//! persistence files.

use std::ops::Range;

/// Deterministic RNG used to drive value generation (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create an RNG seeded from a test name and case index.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h ^ case.wrapping_mul(0x9e3779b97f4a7c15) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the string carries the formatted message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// Result alias used by generated test-case closures.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
///
/// Object-safe core (`generate`), with combinators on the `Sized` subset.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value from the RNG stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for the full value space of a primitive type.
#[derive(Clone, Debug, Default)]
pub struct AnyOf<T>(std::marker::PhantomData<T>);

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyOf<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyOf<$t>;
            fn arbitrary() -> AnyOf<$t> {
                AnyOf(std::marker::PhantomData)
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyOf<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyOf<bool>;
    fn arbitrary() -> AnyOf<bool> {
        AnyOf(std::marker::PhantomData)
    }
}

impl Strategy for AnyOf<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite, roughly log-uniform magnitudes; avoids NaN/inf surprises.
        rng.unit_f64() * 2e6 - 1e6
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyOf<f64>;
    fn arbitrary() -> AnyOf<f64> {
        AnyOf(std::marker::PhantomData)
    }
}

/// The canonical strategy for `T` (`any::<u32>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy choosing uniformly among boxed alternatives (`prop_oneof!`).
pub struct OneOf<V> {
    /// The alternatives to choose among.
    pub options: Vec<BoxedStrategy<V>>,
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.options.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy yielding vectors with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of values from `element`, with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Run one property over `cases` deterministic cases. Used by `proptest!`.
pub fn run_property<F>(test_name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut passed = 0u32;
    let mut attempts = 0u64;
    // Allow generous rejection headroom like upstream (default ratio).
    let max_attempts = (config.cases as u64) * 20 + 100;
    while passed < config.cases {
        if attempts >= max_attempts {
            panic!(
                "proptest stub: too many prop_assume! rejections in {test_name} \
                 ({passed}/{} cases passed after {attempts} attempts)",
                config.cases
            );
        }
        let mut rng = TestRng::for_case(test_name, attempts);
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case failed (case #{attempts}): {msg}")
            }
        }
    }
}

/// Common imports for property tests.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
    /// Namespaced re-export mirroring upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests. Bodies run once per generated case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::run_property(stringify!($name), &__config, |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    let mut __case = move || -> $crate::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// Assert a condition inside a property; failure reports the case inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                )
            }
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(*__l == *__r, $($fmt)*)
            }
        }
    }};
}

/// Skip the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Choose among several strategies with equal weight.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf {
            options: vec![$($crate::Strategy::boxed($strat)),+],
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        /// Ranges stay in bounds.
        #[test]
        fn range_in_bounds(x in 5u32..17) {
            prop_assert!((5..17).contains(&x));
        }

        /// Mapping and tuples compose.
        #[test]
        fn map_and_tuple(pair in ((0u32..10), any::<bool>()).prop_map(|(n, b)| (n * 2, b))) {
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!(pair.0 < 20);
        }

        /// Assume rejects odd values and the body only sees even ones.
        #[test]
        fn assume_filters(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// Oneof picks only listed arms; vec lengths honor the range.
        #[test]
        fn oneof_and_vec(v in prop::collection::vec(prop_oneof![Just(1u32), Just(7u32)], 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 7));
        }
    }
}
