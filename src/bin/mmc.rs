//! `mmc` — command-line front end to the multicore-matmul library.
//!
//! ```text
//! mmc simulate --algo shared_opt --preset q32 --order 120 --setting ideal
//! mmc plan     --preset q32 --order 1000
//! mmc exec     --order 8 --q 32 --tiling tradeoff
//! mmc lu       --order 64 --panel 8 --tiling shared_opt
//! mmc profile  --algo shared_opt --order 60
//! mmc counters --order 12 --tiling tradeoff --json
//! mmc trace    --algo shared_opt --order 60 --out trace.json
//! mmc figures  fig7 --jobs 4 --resume
//! mmc ooc gen --out a.tiled --rows 64 --cols 64 --q 32
//! mmc ooc multiply --a a.tiled --b b.tiled --out c.tiled --mem-budget 8m
//! mmc ooc verify --a a.tiled --b b.tiled --c c.tiled
//! mmc list
//! ```
//!
//! Every subcommand prints a compact human-readable report; simulation
//! counts are exact (the simulator is deterministic). `simulate`, `exec`,
//! `profile` and `counters` accept `--json` for machine-readable output
//! (all reports share one `schema_version`); `counters` samples hardware
//! events via `perf_event_open(2)` next to the model's predicted misses,
//! printing `counters: "unavailable"` and exiting zero when the PMU or
//! permissions are missing; `trace`
//! records a flight-recorder journal and exports Chrome trace-event JSON
//! loadable at <https://ui.perfetto.dev>.

use multicore_matmul::exec::parse_bytes;
use multicore_matmul::lu::{bounds as lu_bounds, BlockedLu, SimLuHooks, UpdateTiling};
use multicore_matmul::prelude::*;
use multicore_matmul::sim::ProfilingSink;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::process::exit;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage:\n  mmc simulate --algo A --order N [--preset P] [--setting ideal|lru|lru2|lru50] [--json]\n  \
           mmc plan [--preset P] [--order N] [--sigma-s X --sigma-d Y]\n  \
           mmc exec --order N [--q Q] [--tiling T] [--algo classic|strassen|auto] [--cutoff N] [--seed S] [--json] [--trace-out F] [--drift] [--band X]\n  \
           mmc drift --order N [--q Q] [--kernel K] [--preset P] [--seed S] [--band X] [--mem-budget BYTES[k|m|g]] [--json] [--trace-out F]\n  \
           mmc lu --order N [--panel W] [--tiling T] [--q Q]\n  \
           mmc profile --algo A --order N [--preset P] [--json]\n  \
           mmc counters --order N [--q Q] [--tiling T] [--kernel K] [--preset P] [--seed S] [--json]\n  \
           mmc trace --algo A --order N --out F [--preset P] [--setting S] [--granularity G] [--fma-time T]\n  \
           mmc figures <id>...|all|list [--out DIR] [--full] [--jobs N] [--resume] [--serial] [--quiet]\n  \
           mmc ooc gen --out F --rows R --cols C [--q Q] [--seed S]\n  \
           mmc ooc multiply --a F --b F --out F --mem-budget BYTES[k|m|g] [--io-threads N] [--kernel K] [--preset P] [--sigma-ratio X] [--json] [--trace-out F] [--drift]\n  \
           mmc ooc verify --a F --b F --c F [--kernel K] [--preset P]\n  \
           mmc serve [--addr HOST:PORT] [--ram-budget BYTES[k|m|g]] [--workers N] [--preset P] [--band X]\n  \
           mmc list\n\
         presets: q32 q32p q64 q64p q80 q80p;\n\
         algorithms: shared_opt distributed_opt tradeoff outer_product shared_equal distributed_equal cache_oblivious;\n\
         tilings (exec): shared_opt distributed_opt tradeoff equal; (lu): row_stripes shared_opt tradeoff;\n\
         granularities (trace): auto events steps; kernels (ooc): auto scalar avx2 neon;\n\
         env: MMC_KERNEL=scalar|avx2|neon|auto forces the exec micro-kernel variant;\n\
         env: MMC_BLOCKING=mc,kc,nc (elements) pins the 5-loop macro-kernel blocking (default: derived from host caches);\n\
         env: MMC_SPANS=off disables the always-on span recorder; MMC_SPAN_RING=N sets its per-thread ring capacity"
    );
    exit(2);
}

/// Flags that take no value (presence means `"true"`).
const BOOL_FLAGS: &[&str] = &["json", "drift"];

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(flag) = it.next() {
        let Some(name) = flag.strip_prefix("--") else {
            eprintln!("unexpected argument {flag:?}");
            usage();
        };
        if BOOL_FLAGS.contains(&name) {
            flags.insert(name.to_string(), "true".to_string());
            continue;
        }
        let Some(value) = it.next() else {
            eprintln!("missing value for --{name}");
            usage();
        };
        flags.insert(name.to_string(), value.clone());
    }
    flags
}

fn preset(flags: &HashMap<String, String>) -> MachineConfig {
    match flags.get("preset").map(String::as_str).unwrap_or("q32") {
        "q32" => MachineConfig::quad_q32(),
        "q32p" => MachineConfig::quad_q32_pessimistic(),
        "q64" => MachineConfig::quad_q64(),
        "q64p" => MachineConfig::quad_q64_pessimistic(),
        "q80" => MachineConfig::quad_q80(),
        "q80p" => MachineConfig::quad_q80_pessimistic(),
        other => {
            eprintln!("unknown preset {other:?}");
            usage();
        }
    }
}

fn num<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --{key}: {v:?}");
            usage();
        }),
    }
}

fn algo(flags: &HashMap<String, String>) -> Box<dyn Algorithm> {
    match flags.get("algo").map(String::as_str).unwrap_or_else(|| usage()) {
        "shared_opt" => Box::new(SharedOpt),
        "distributed_opt" => Box::new(DistributedOpt::default()),
        "tradeoff" => Box::new(Tradeoff::default()),
        "outer_product" => Box::new(OuterProduct::default()),
        "shared_equal" => Box::new(SharedEqual),
        "distributed_equal" => Box::new(DistributedEqual::default()),
        "cache_oblivious" => Box::new(CacheOblivious::new()),
        other => {
            eprintln!("unknown algorithm {other:?}");
            usage();
        }
    }
}

/// Resolve a `--setting` name to the `(declared machine, sim config)`
/// pair shared by `simulate` and `trace`.
fn sim_setting(
    setting: &str,
    machine: &MachineConfig,
    a: &dyn Algorithm,
) -> (MachineConfig, SimConfig) {
    match setting {
        "ideal" if a.id() == "outer_product" || a.id() == "cache_oblivious" => {
            eprintln!("note: {} manages no residency; running under LRU", a.name());
            (machine.clone(), SimConfig::lru(machine))
        }
        "ideal" => (machine.clone(), SimConfig::ideal(machine)),
        "lru" => (machine.clone(), SimConfig::lru(machine)),
        "lru2" => (machine.clone(), SimConfig::lru_scaled(machine, 2)),
        "lru50" => (machine.halved(), SimConfig::lru(machine)),
        other => {
            eprintln!("unknown setting {other:?}");
            usage();
        }
    }
}

/// Machine-readable `mmc simulate --json` output.
#[derive(Serialize, Deserialize)]
struct SimulateReport {
    #[serde(default)]
    schema_version: u32,
    algo: String,
    order: u32,
    setting: String,
    ms_lower_bound: f64,
    md_lower_bound: f64,
    predicted_ms: Option<f64>,
    predicted_md: Option<f64>,
    metrics: MetricsSnapshot,
}

fn cmd_simulate(flags: HashMap<String, String>) {
    let machine = preset(&flags);
    let order: u32 = num(&flags, "order", 0);
    if order == 0 {
        eprintln!("--order is required");
        usage();
    }
    let a = algo(&flags);
    let problem = ProblemSpec::square(order);
    let setting = flags.get("setting").map(String::as_str).unwrap_or("ideal");
    let (declared, cfg) = sim_setting(setting, &machine, a.as_ref());
    let mut sim = Simulator::new(cfg, order, order, order);
    let t0 = Instant::now();
    if let Err(e) = a.execute(&declared, &problem, &mut sim) {
        eprintln!("error: {e}");
        exit(1);
    }
    let dt = t0.elapsed();
    let stats = sim.stats();
    let pred = a.predict(&declared, &problem);
    if flags.contains_key("json") {
        let model = TimingModel::data_only(machine.sigma_s, machine.sigma_d);
        let report = SimulateReport {
            schema_version: SCHEMA_VERSION,
            algo: a.id().to_string(),
            order,
            setting: setting.to_string(),
            ms_lower_bound: bounds::ms_lower_bound(&problem, &declared),
            md_lower_bound: bounds::md_lower_bound(&problem, &declared),
            predicted_ms: pred.as_ref().map(|p| p.ms),
            predicted_md: pred.as_ref().map(|p| p.md),
            metrics: MetricsSnapshot::from_stats(
                a.id(),
                sim.config().policy.label(),
                stats,
                &model,
            ),
        };
        println!("{}", serde_json::to_string_pretty(&report).expect("serialize report"));
        return;
    }
    println!("{} on {} blocks ({setting}):", a.name(), problem);
    println!("{stats}");
    println!(
        "bounds: M_S >= {:.0}, M_D >= {:.0}",
        bounds::ms_lower_bound(&problem, &declared),
        bounds::md_lower_bound(&problem, &declared)
    );
    println!(
        "T_data = {:.0} (sigma_S = {}, sigma_D = {})",
        stats.t_data(machine.sigma_s, machine.sigma_d),
        machine.sigma_s,
        machine.sigma_d
    );
    if let Some(pred) = pred {
        println!("paper formula: M_S = {:.0}, M_D = {:.0}", pred.ms, pred.md);
    }
    println!("({} block FMAs simulated in {:.2}s)", stats.total_fmas(), dt.as_secs_f64());
}

fn cmd_plan(flags: HashMap<String, String>) {
    let mut machine = preset(&flags);
    if let (Some(_), _) | (_, Some(_)) = (flags.get("sigma-s"), flags.get("sigma-d")) {
        machine = machine.with_bandwidths(num(&flags, "sigma-s", 1.0), num(&flags, "sigma-d", 1.0));
    }
    let order: u32 = num(&flags, "order", 1000);
    let problem = ProblemSpec::square(order);
    println!(
        "machine: p = {}, C_S = {}, C_D = {}, q = {}, sigma_S = {}, sigma_D = {}",
        machine.cores,
        machine.shared_capacity,
        machine.dist_capacity,
        machine.block_size,
        machine.sigma_s,
        machine.sigma_d
    );
    println!("  lambda = {:?}, mu = {:?}", params::lambda(&machine), params::mu(&machine));
    println!(
        "  tradeoff: {:?} (alpha_num = {:.2})",
        params::tradeoff_params(&machine),
        params::alpha_num(&machine)
    );
    println!("\npredictions for a square order-{order} product:");
    let mut best: Option<(&'static str, f64)> = None;
    for a in all_algorithms() {
        match a.predict(&machine, &problem) {
            Some(p) => {
                let t = p.t_data(&machine);
                println!(
                    "  {:<20} M_S = {:>14.0}  M_D = {:>14.0}  T_data = {:>14.0}",
                    a.name(),
                    p.ms,
                    p.md,
                    t
                );
                if best.map(|(_, bt)| t < bt).unwrap_or(true) {
                    best = Some((a.name(), t));
                }
            }
            None => println!("  {:<20} (no closed form)", a.name()),
        }
    }
    println!("\nT_data lower bound: {:.0}", bounds::tdata_lower_bound(&problem, &machine));
    if let Some((name, t)) = best {
        println!("recommendation: {name} (predicted T_data = {t:.0})");
    }
}

/// Machine-readable `mmc exec --json` output.
#[derive(Serialize, Deserialize)]
struct ExecReport {
    #[serde(default)]
    schema_version: u32,
    order: u32,
    q: usize,
    tiling: String,
    /// Dispatched micro-kernel variant (`scalar`, `avx2_fma`, `neon`).
    kernel: String,
    /// Active 5-loop blocking plan (`mc=.. kc=.. nc=..`, elements) —
    /// analytic from the host caches unless pinned via `MMC_BLOCKING`.
    #[serde(default)]
    blocking: String,
    tasks: usize,
    threads: usize,
    seconds: f64,
    gflops: f64,
    naive_seconds: f64,
    matches: bool,
    /// Algorithm that ran: `classic` or `strassen` (after `auto`
    /// resolution).
    #[serde(default)]
    algo: String,
    /// Smallest square side (blocks) where the cost model predicts the
    /// Strassen recursion beats the classic 5-loop path.
    #[serde(default)]
    predicted_crossover_blocks: Option<u64>,
    /// Geometry/workspace report of the Strassen run, when one ran.
    #[serde(default)]
    strassen: Option<multicore_matmul::strassen::StrassenReport>,
    /// Strassen-vs-oracle max elementwise difference.
    #[serde(default)]
    max_abs_diff: Option<f64>,
    /// The documented Winograd error bound the difference was checked
    /// against (Higham's `18^d` growth, scaled by the operand maxima).
    #[serde(default)]
    tolerance: Option<f64>,
    /// Predicted-vs-measured drift over the traced 5-loop phases;
    /// present only under `--drift` on the classic path.
    #[serde(default)]
    drift: Option<DriftReport>,
}

fn cmd_exec(flags: HashMap<String, String>) {
    let machine = preset(&flags);
    let order: u32 = num(&flags, "order", 8);
    let q: usize = num(&flags, "q", 16);
    let seed: u64 = num(&flags, "seed", 1);
    let tiling_name = flags.get("tiling").cloned().unwrap_or_else(|| "tradeoff".into());
    let tiling = match tiling_name.as_str() {
        "shared_opt" => Tiling::shared_opt(&machine),
        "distributed_opt" => Tiling::distributed_opt(&machine),
        "tradeoff" => Tiling::tradeoff(&machine),
        "equal" => Tiling::equal(machine.shared_capacity),
        other => {
            eprintln!("unknown tiling {other:?}");
            usage();
        }
    }
    .unwrap_or_else(|| {
        eprintln!("tiling infeasible on this preset");
        exit(1);
    });
    let a = BlockMatrix::pseudo_random(order, order, q, seed);
    let b = BlockMatrix::pseudo_random(order, order, q, seed + 1);
    let variant = multicore_matmul::exec::kernel::variant();
    let blocking = multicore_matmul::exec::blocking::active_plan::<f64>();

    // Model-driven algorithm selection: price the classic 5-loop path
    // and the Strassen recursion in the chosen preset machine's world
    // (same convention as `mmc plan`), with the selected tiling as the
    // model's blocking — so the prediction is deterministic per preset,
    // independent of the host caches the real executor tunes for.
    let cutoff: u32 = num(&flags, "cutoff", multicore_matmul::strassen::DEFAULT_CUTOFF);
    let env = CostEnv::for_machine(
        &machine,
        tiling.tile_m as u64,
        tiling.tile_k as u64,
        tiling.tile_n as u64,
    );
    let choice = choose_algorithm(order as u64, q as u64, cutoff as u64, &env);
    let crossover = predicted_crossover(q as u64, cutoff as u64, &env, 8192);
    let algo = match flags.get("algo").map(String::as_str).unwrap_or("classic") {
        "classic" => "classic",
        "strassen" => "strassen",
        "auto" => {
            if choice.use_strassen {
                "strassen"
            } else {
                "classic"
            }
        }
        other => {
            eprintln!("unknown algo {other:?} (expected classic|strassen|auto)");
            usage();
        }
    };

    let mut strassen_report = None;
    let t0 = Instant::now();
    let (c, run) = if algo == "strassen" {
        let opts =
            multicore_matmul::strassen::StrassenOpts { cutoff, variant, plan: blocking, tiling };
        let trace_job = multicore_matmul::obs::span::new_job();
        let epoch_ns = multicore_matmul::obs::span::now_ns();
        let (c, sr) = multicore_matmul::strassen::strassen_multiply(&a, &b, &opts);
        let spans = multicore_matmul::obs::span::collect_job(trace_job);
        strassen_report = Some(sr);
        (c, TracedRun { job: trace_job, epoch_ns, variant, plan: blocking, spans })
    } else {
        run_traced(&a, &b, tiling, variant, blocking)
    };
    let dt = t0.elapsed().as_secs_f64();
    let spans = task_spans(&run);
    // Effective flops: Strassen does fewer, but GFLOP/s is reported
    // against the classic 2n³ so the two algorithms compare directly.
    let flops = 2.0 * (order as f64 * q as f64).powi(3);
    let threads = spans.iter().filter_map(|s| s.thread).max().map_or(0, |t| t + 1);
    if let Some(path) = flags.get("trace-out") {
        if let Err(e) = std::fs::write(path, task_spans_to_chrome(&spans)) {
            eprintln!("error writing {path}: {e}");
            exit(1);
        }
    }
    let drift = if flags.contains_key("drift") {
        if algo == "strassen" {
            eprintln!("note: --drift models the classic 5-loop phases; skipped for strassen");
            None
        } else {
            let band: f64 = num(&flags, "band", multicore_matmul::obs::drift::DEFAULT_BAND);
            let model = ExecModel::for_run(&a, &b, tiling, variant);
            Some(exec_drift(&run, &model, band))
        }
    } else {
        None
    };
    let t0 = Instant::now();
    let oracle = gemm_naive(&a, &b);
    let dt_naive = t0.elapsed().as_secs_f64();
    // Classic runs round identically to the blockwise oracle; Winograd
    // re-associates, so it is checked against its documented bound.
    let (matches, max_abs_diff, tolerance) = match &strassen_report {
        None => (c == oracle, None, None),
        Some(sr) => {
            let tol =
                multicore_matmul::strassen::comparison_tolerance(&a, &b, sr, f64::EPSILON / 2.0);
            let diff = c.max_abs_diff(&oracle);
            (diff <= tol, Some(diff), Some(tol))
        }
    };
    let kernel = variant.name();
    if flags.contains_key("json") {
        let report = ExecReport {
            schema_version: SCHEMA_VERSION,
            order,
            q,
            tiling: tiling_name,
            kernel: kernel.to_string(),
            blocking: blocking.to_string(),
            tasks: spans.len(),
            threads,
            seconds: dt,
            gflops: flops / dt / 1e9,
            naive_seconds: dt_naive,
            matches,
            algo: algo.to_string(),
            predicted_crossover_blocks: crossover,
            strassen: strassen_report,
            max_abs_diff,
            tolerance,
            drift,
        };
        println!("{}", serde_json::to_string_pretty(&report).expect("serialize report"));
    } else {
        println!(
            "C = A x B, {}x{} blocks of {q}x{q} ({} x {} elements), tiling {:?}",
            order,
            order,
            order as usize * q,
            order as usize * q,
            tiling
        );
        println!(
            "  algorithm: {algo} (predicted classic {:.3e} vs strassen {:.3e}; crossover ~{} blocks)",
            choice.classic_time,
            choice.strassen_time,
            crossover.map_or_else(|| "none".into(), |x| x.to_string()),
        );
        println!(
            "  {dt:.3}s  ->  {:.2} GFLOP/s ({} tile tasks over {threads} threads, {kernel} kernel, {blocking})",
            flops / dt / 1e9,
            spans.len()
        );
        match (&strassen_report, max_abs_diff, tolerance) {
            (Some(sr), Some(diff), Some(tol)) => {
                println!(
                    "  depth {} over {}x{} padded blocks (leaf {}), {} leaf products, {} workspace bytes",
                    sr.depth,
                    sr.padded_side,
                    sr.padded_side,
                    sr.leaf_side,
                    sr.leaf_products,
                    sr.workspace_bytes
                );
                println!(
                    "  naive oracle: {dt_naive:.3}s; within Winograd tolerance: {matches} (max diff {diff:.3e} <= {tol:.3e})"
                );
            }
            _ => println!("  naive oracle: {dt_naive:.3}s; results identical: {matches}"),
        }
        if let Some(d) = &drift {
            print!("{}", d.render_text());
        }
    }
    if !matches {
        exit(1);
    }
}

fn cmd_lu(flags: HashMap<String, String>) {
    let machine = preset(&flags);
    let order: u32 = num(&flags, "order", 64);
    let panel: u32 = num(&flags, "panel", 8);
    let q: usize = num(&flags, "q", 8);
    let tiling = match flags.get("tiling").map(String::as_str).unwrap_or("shared_opt") {
        "row_stripes" => UpdateTiling::RowStripes,
        "shared_opt" => UpdateTiling::SharedOpt,
        "tradeoff" => UpdateTiling::Tradeoff,
        other => {
            eprintln!("unknown LU tiling {other:?}");
            usage();
        }
    };
    // Simulated misses.
    let lu = BlockedLu::new(panel, tiling);
    let mut sim = Simulator::new(SimConfig::lru(&machine), order, order, 1);
    let mut hooks = SimLuHooks::new(&mut sim);
    if let Err(e) = lu.run(&machine, order, &mut hooks) {
        eprintln!("error: {e}");
        exit(1);
    }
    println!("blocked LU, {order}x{order} blocks, panel {panel}, {tiling:?} updates:");
    println!(
        "  simulated LRU: M_S = {}, M_D = {} ({} update FMAs; bounds {:.0} / {:.0})",
        sim.stats().ms(),
        sim.stats().md(),
        lu_bounds::update_fmas(order as u64),
        lu_bounds::ms_lower_bound(order as u64, &machine),
        lu_bounds::md_lower_bound(order as u64, &machine),
    );
    // Real factorization on a smaller instance if order is big.
    let n_exec = order.min(24);
    let a = multicore_matmul::lu::exec::diagonally_dominant(n_exec, q, 7);
    let mut m = a.clone();
    let t0 = Instant::now();
    if let Err(e) = multicore_matmul::lu::lu_factor_parallel(&mut m, panel.min(n_exec)) {
        eprintln!("error: {e}");
        exit(1);
    }
    println!(
        "  executed {n_exec}x{n_exec} blocks (q = {q}) in {:.3}s; residual = {:.2e}",
        t0.elapsed().as_secs_f64(),
        multicore_matmul::lu::residual(&m, &a)
    );
}

/// Machine-readable `mmc profile --json` output.
#[derive(Serialize, Deserialize)]
struct ProfileReport {
    #[serde(default)]
    schema_version: u32,
    algo: String,
    order: u32,
    capacities: Vec<u64>,
    misses: Vec<u64>,
    accesses: u64,
    distinct: u64,
    working_set: u64,
}

fn cmd_profile(flags: HashMap<String, String>) {
    let machine = preset(&flags);
    let order: u32 = num(&flags, "order", 60);
    let a = algo(&flags);
    let problem = ProblemSpec::square(order);
    let mut sink = ProfilingSink::new(problem.block_space(), machine.cores, machine.dist_capacity);
    if let Err(e) = a.execute(&machine, &problem, &mut sink) {
        eprintln!("error: {e}");
        exit(1);
    }
    let base = machine.shared_capacity;
    let capacities = [base / 4, base / 2, base, 2 * base, 4 * base];
    if flags.contains_key("json") {
        let report = ProfileReport {
            schema_version: SCHEMA_VERSION,
            algo: a.id().to_string(),
            order,
            capacities: capacities.iter().map(|&c| c as u64).collect(),
            misses: capacities
                .iter()
                .map(|&c| sink.shared_profile.misses_for_capacity(c))
                .collect(),
            accesses: sink.shared_profile.accesses(),
            distinct: sink.shared_profile.distinct(),
            working_set: sink.shared_profile.working_set() as u64,
        };
        println!("{}", serde_json::to_string_pretty(&report).expect("serialize report"));
        return;
    }
    println!(
        "{} on {problem} blocks — shared-level LRU miss curve (private caches at C_D = {}):",
        a.name(),
        machine.dist_capacity
    );
    println!("  {:>8} {:>14}", "C_S", "misses");
    for cs in capacities {
        println!("  {:>8} {:>14}", cs, sink.shared_profile.misses_for_capacity(cs));
    }
    println!(
        "  stream: {} accesses, {} distinct blocks, deepest reuse {}",
        sink.shared_profile.accesses(),
        sink.shared_profile.distinct(),
        sink.shared_profile.working_set()
    );
}

/// The algorithm whose block schedule an exec tiling implements, so the
/// `counters` subcommand can place model predictions (closed form + exact
/// LRU simulation) next to hardware measurements of the same point.
fn tiling_algorithm(name: &str) -> Box<dyn Algorithm> {
    match name {
        "shared_opt" => Box::new(SharedOpt),
        "distributed_opt" => Box::new(DistributedOpt::default()),
        "tradeoff" => Box::new(Tradeoff::default()),
        "equal" => Box::new(SharedEqual),
        other => {
            eprintln!("unknown tiling {other:?}");
            usage();
        }
    }
}

/// An object `Value` from literal key/value pairs. The `counters` report
/// is assembled by hand because its `counters` field is a union (object
/// when the PMU is live, the string `"unavailable"` otherwise), which the
/// derive facade cannot express.
fn jobj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// `mmc counters` — model-vs-machine reconciliation for one GEMM point.
///
/// Runs the chosen tiling's schedule twice: once through the cache
/// simulator (exact LRU misses at the declared capacities) and once for
/// real under `perf_event_open(2)` hardware counters, then prints both
/// sides. Degrades gracefully: when the PMU is missing (container,
/// `perf_event_paranoid`, `MMC_PERF=off`) the report carries
/// `counters: "unavailable"` plus the reason and the command still exits
/// zero, so scripted callers never have to special-case permission
/// errors.
fn cmd_counters(flags: HashMap<String, String>) {
    let machine = preset(&flags);
    let order: u32 = num(&flags, "order", 12);
    let q: usize = num(&flags, "q", 16);
    let seed: u64 = num(&flags, "seed", 1);
    let tiling_name = flags.get("tiling").cloned().unwrap_or_else(|| "tradeoff".into());
    let tiling = match tiling_name.as_str() {
        "shared_opt" => Tiling::shared_opt(&machine),
        "distributed_opt" => Tiling::distributed_opt(&machine),
        "tradeoff" => Tiling::tradeoff(&machine),
        "equal" => Tiling::equal(machine.shared_capacity),
        other => {
            eprintln!("unknown tiling {other:?}");
            usage();
        }
    }
    .unwrap_or_else(|| {
        eprintln!("tiling infeasible on this preset");
        exit(1);
    });
    let variant = kernel_flag(&flags);
    let a = tiling_algorithm(&tiling_name);
    let problem = ProblemSpec::square(order);

    // Model side: paper closed form plus an exact LRU simulation of the
    // same (algorithm, order) point.
    let pred = a.predict(&machine, &problem);
    let mut sim = Simulator::new(SimConfig::lru(&machine), order, order, order);
    if let Err(e) = a.execute(&machine, &problem, &mut sim) {
        eprintln!("error: {e}");
        exit(1);
    }
    let stats = sim.stats();
    let block_bytes = (q * q * 8) as u64;
    let predicted_bytes = stats.ms() * block_bytes;

    // 5-loop macro-kernel model: the analytic blocking the executor will
    // actually run, converted to whole-block loop steps exactly as the
    // packed path does, fed to the closed-form traffic count (modeled at
    // whole-problem granularity, i.e. one C tile).
    let plan = multicore_matmul::exec::blocking::active_plan::<f64>();
    let fiveloop = five_loop_traffic(
        order as u64,
        order as u64,
        order as u64,
        (plan.mc / q).max(1) as u64,
        (plan.kc / q).max(1) as u64,
        (plan.nc / q).max(1) as u64,
    );

    // Machine side: the same schedule executed for real, wrapped in perf
    // counters, with registry deltas isolating this run's contribution.
    let ma = BlockMatrix::pseudo_random(order, order, q, seed);
    let mb = BlockMatrix::pseudo_random(order, order, q, seed + 1);
    let before = multicore_matmul::obs::global().snapshot();
    let counters = PerfCounters::open();
    let t0 = Instant::now();
    let c = gemm_parallel_with_kernel(&ma, &mb, tiling, variant);
    let seconds = t0.elapsed().as_secs_f64();
    let reading = counters.read();
    let after = multicore_matmul::obs::global().snapshot();
    std::hint::black_box(&c);

    let delta = |name: &str| {
        after.counter(name).unwrap_or(0).saturating_sub(before.counter(name).unwrap_or(0))
    };
    let flops = delta(&format!("exec.flops.{}", variant.name()));
    let pack_bytes = delta("exec.pack_bytes");
    let gflops = if seconds > 0.0 { flops as f64 / seconds / 1e9 } else { 0.0 };
    let llc_miss_bytes = if counters.hardware_available() {
        reading.get("llc_load_misses").or_else(|| reading.get("cache_misses")).map(|m| m * 64)
    } else {
        None
    };

    if flags.contains_key("json") {
        let predicted = jobj(vec![
            ("ms_formula_blocks", pred.as_ref().map_or(Value::Null, |p| Value::Float(p.ms))),
            ("md_formula_blocks", pred.as_ref().map_or(Value::Null, |p| Value::Float(p.md))),
            (
                "t_data_formula",
                pred.as_ref().map_or(Value::Null, |p| Value::Float(p.t_data(&machine))),
            ),
            ("ms_simulated_blocks", Value::UInt(stats.ms())),
            ("md_simulated_blocks", Value::UInt(stats.md())),
            ("t_data_simulated", Value::Float(stats.t_data(machine.sigma_s, machine.sigma_d))),
            ("shared_traffic_bytes", Value::UInt(predicted_bytes)),
            ("fiveloop_ms_blocks", Value::UInt(fiveloop.ms)),
            ("fiveloop_md_blocks", Value::UInt(fiveloop.md)),
            ("blocking", Value::Str(plan.to_string())),
        ]);
        let measured = jobj(vec![
            ("wall_seconds", Value::Float(seconds)),
            ("gflops", Value::Float(gflops)),
            ("kernel_flops", Value::UInt(flops)),
            ("pack_bytes", Value::UInt(pack_bytes)),
        ]);
        let (counters_value, mut extra) = if counters.hardware_available() {
            let hw: Vec<(&str, Value)> =
                reading.hardware.iter().map(|v| (v.event.as_str(), Value::UInt(v.value))).collect();
            let hw =
                Value::Object(hw.into_iter().map(|(k, v)| (k.to_string(), v)).collect::<Vec<_>>());
            let mut extra =
                vec![("counters_multiplexed".to_string(), Value::Bool(reading.multiplexed))];
            if let Some(bytes) = llc_miss_bytes {
                let mut derived = vec![("llc_miss_bytes".to_string(), Value::UInt(bytes))];
                if predicted_bytes > 0 {
                    derived.push((
                        "measured_vs_predicted_bytes".to_string(),
                        Value::Float(bytes as f64 / predicted_bytes as f64),
                    ));
                }
                extra.push(("derived".to_string(), Value::Object(derived)));
            }
            (hw, extra)
        } else {
            (
                Value::Str("unavailable".to_string()),
                vec![(
                    "counters_reason".to_string(),
                    Value::Str(counters.unavailable_reason().unwrap_or("unknown").to_string()),
                )],
            )
        };
        let software = Value::Object(
            reading
                .software
                .iter()
                .map(|v| (v.event.clone(), Value::UInt(v.value)))
                .collect::<Vec<_>>(),
        );
        let mut fields = vec![
            ("schema_version".to_string(), Value::UInt(SCHEMA_VERSION as u64)),
            ("order".to_string(), Value::UInt(order as u64)),
            ("q".to_string(), Value::UInt(q as u64)),
            ("tiling".to_string(), Value::Str(tiling_name)),
            ("algorithm".to_string(), Value::Str(a.id().to_string())),
            ("kernel".to_string(), Value::Str(variant.name().to_string())),
            ("predicted".to_string(), predicted),
            ("measured".to_string(), measured),
            ("counters".to_string(), counters_value),
        ];
        fields.append(&mut extra);
        fields.push(("software_counters".to_string(), software));
        let report = Value::Object(fields);
        println!("{}", serde_json::to_string_pretty(&report).expect("serialize report"));
        return;
    }

    println!(
        "{} schedule on {order}x{order} blocks of {q}x{q} ({} kernel):",
        a.name(),
        variant.name()
    );
    match &pred {
        Some(p) => println!(
            "  model:    M_S = {:.0} (formula) / {} (LRU sim), M_D = {:.0} / {}, \
             shared traffic {:.1} MiB",
            p.ms,
            stats.ms(),
            p.md,
            stats.md(),
            mib(predicted_bytes)
        ),
        None => println!(
            "  model:    M_S = {} (LRU sim), M_D = {} (no closed form), \
             shared traffic {:.1} MiB",
            stats.ms(),
            stats.md(),
            mib(predicted_bytes)
        ),
    }
    println!(
        "  5-loop:   M_S = {} / M_D = {} blocks under {plan} \
         (macro-kernel model, whole-problem tile)",
        fiveloop.ms, fiveloop.md
    );
    println!(
        "  machine:  {seconds:.3}s wall, {gflops:.2} GFLOP/s, {flops} kernel FLOPs, \
         {:.1} MiB packed",
        mib(pack_bytes)
    );
    if counters.hardware_available() {
        for v in &reading.hardware {
            println!("  counter:  {:<18} {}", v.event, v.value);
        }
        if reading.multiplexed {
            println!("  counter:  (values scaled for multiplexing)");
        }
        if let Some(bytes) = llc_miss_bytes {
            print!("  derived:  LLC miss traffic {:.1} MiB", mib(bytes));
            if predicted_bytes > 0 {
                print!(" = {:.2}x predicted shared traffic", bytes as f64 / predicted_bytes as f64);
            }
            println!();
        }
    } else {
        println!(
            "  counters: unavailable ({})",
            counters.unavailable_reason().unwrap_or("unknown")
        );
    }
    for v in &reading.software {
        println!("  software: {:<18} {}", v.event, v.value);
    }
}

/// `mmc figures` — the sharded figure harness, embedded in the CLI so the
/// paper sweep is reachable without `cargo run -p mmc-bench`. Positional
/// ids plus the `figures` binary's flags (`--jobs`, `--resume`,
/// `--serial`, `--full`, `--out`, `--quiet`).
fn cmd_figures(args: &[String]) {
    use mmc_bench::{figure_ids, run_figure_sharded, HarnessOpts, SweepOpts};
    let mut ids: Vec<String> = Vec::new();
    let mut out = std::path::PathBuf::from("target/figures");
    let mut opts = SweepOpts { verbose: true, ..SweepOpts::default() };
    let mut harness = HarnessOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = std::path::PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--full" => opts.full = true,
            "--quiet" => opts.verbose = false,
            "--jobs" => {
                harness.jobs = it.next().and_then(|v| v.parse().ok()).or_else(|| usage());
            }
            "--resume" => harness.resume = true,
            "--serial" => harness.serial = true,
            "--orders" => {
                let spec = it.next().unwrap_or_else(|| usage());
                let orders: Result<Vec<u32>, _> =
                    spec.split(',').map(|t| t.trim().parse::<u32>()).collect();
                match orders {
                    Ok(o) if !o.is_empty() => opts.orders = Some(o),
                    _ => usage(),
                }
            }
            "list" => {
                for id in figure_ids() {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(figure_ids().iter().map(|s| s.to_string())),
            s if s.starts_with('-') => usage(),
            s => ids.push(s.to_string()),
        }
    }
    if ids.is_empty() {
        usage();
    }
    ids.dedup();
    for id in &ids {
        if !figure_ids().contains(&id.as_str()) {
            eprintln!("unknown figure id {id:?}");
            usage();
        }
    }
    harness.cache_dir = Some(out.join("cache"));
    let mut failures = 0usize;
    for id in &ids {
        let t0 = Instant::now();
        eprintln!("== {id} ==");
        let (panels, report) = run_figure_sharded(id, &opts, &harness);
        eprintln!("{}", report.summary(id));
        for err in &report.errors {
            eprintln!("  [points] FAILED {}: {}", err.point, err.message);
        }
        failures += report.failed;
        for panel in &panels {
            match panel.write_csv(&out) {
                Ok(path) => eprintln!("  wrote {}", path.display()),
                Err(e) => {
                    eprintln!("  failed to write CSV for {}: {e}", panel.id);
                    exit(1);
                }
            }
            println!("{}", panel.to_table());
        }
        eprintln!("== {id} done in {:.1}s ==\n", t0.elapsed().as_secs_f64());
    }
    if failures > 0 {
        eprintln!("{failures} point(s) failed; affected cells are empty");
        exit(1);
    }
}

/// Journal-size threshold above which `--granularity auto` switches from
/// per-event spans to per-superstep aggregation.
const AUTO_GRANULARITY_LIMIT: usize = 200_000;

fn cmd_trace(flags: HashMap<String, String>) {
    let machine = preset(&flags);
    let order: u32 = num(&flags, "order", 0);
    if order == 0 {
        eprintln!("--order is required");
        usage();
    }
    let Some(out) = flags.get("out") else {
        eprintln!("--out is required");
        usage();
    };
    let a = algo(&flags);
    let problem = ProblemSpec::square(order);
    let setting = flags.get("setting").map(String::as_str).unwrap_or("lru");
    let (declared, cfg) = sim_setting(setting, &machine, a.as_ref());
    // Default FMA cost: one distributed-cache fill time per block FMA, so
    // compute and data spans are comparable in the timeline.
    let fma_time: f64 = num(&flags, "fma-time", 1.0 / machine.sigma_d);
    let model = TimingModel { fma_time, sigma_s: machine.sigma_s, sigma_d: machine.sigma_d };
    let mut rec = FlightRecorder::new(Simulator::new(cfg, order, order, order), model);
    let t0 = Instant::now();
    if let Err(e) = a.execute(&declared, &problem, &mut rec) {
        eprintln!("error: {e}");
        exit(1);
    }
    let dt = t0.elapsed();
    let granularity = match flags.get("granularity").map(String::as_str).unwrap_or("auto") {
        "events" => ChromeGranularity::Events,
        "steps" => ChromeGranularity::Supersteps,
        "auto" if rec.journal().len() <= AUTO_GRANULARITY_LIMIT => ChromeGranularity::Events,
        "auto" => ChromeGranularity::Supersteps,
        other => {
            eprintln!("unknown granularity {other:?}");
            usage();
        }
    };
    let text = rec.chrome_trace(granularity);
    if let Err(e) = std::fs::write(out, &text) {
        eprintln!("error writing {out}: {e}");
        exit(1);
    }
    let stats = rec.stats();
    println!("{} on {} blocks ({setting}), flight recorder:", a.name(), problem);
    println!(
        "  {} journal events, {} supersteps, logical makespan {:.0}",
        rec.journal().len(),
        rec.supersteps(),
        rec.elapsed()
    );
    println!(
        "  M_S = {}, M_D = {}, {} block FMAs (recorded in {:.2}s)",
        stats.ms(),
        stats.md(),
        stats.total_fmas(),
        dt.as_secs_f64()
    );
    println!(
        "  wrote {out} ({:.1} KiB, {granularity:?} granularity) — load at https://ui.perfetto.dev",
        text.len() as f64 / 1024.0
    );
}

/// A flag whose value is required; missing means usage error (exit 2).
fn req<'a>(flags: &'a HashMap<String, String>, key: &str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or_else(|| {
        eprintln!("--{key} is required");
        usage();
    })
}

/// Resolve a `--<key> BYTES[k|m|g]` budget flag through the shared
/// overflow-checked [`parse_bytes`] helper (the same one the blocking
/// planner uses on sysfs cache sizes). `default` fills in when the flag
/// is absent; `None` makes the flag required. Malformed or overflowing
/// spellings are a usage error, never a wrapped value.
fn budget_flag(flags: &HashMap<String, String>, key: &str, default: Option<u64>) -> u64 {
    match flags.get(key) {
        Some(text) => parse_bytes(text.trim()).unwrap_or_else(|| {
            eprintln!("invalid --{key} {text:?} (use e.g. 4096, 64k, 8m, 1g)");
            usage();
        }),
        None => default.unwrap_or_else(|| {
            eprintln!("--{key} is required");
            usage();
        }),
    }
}

/// Resolve `--kernel` to a variant runnable on this CPU.
fn kernel_flag(flags: &HashMap<String, String>) -> KernelVariant {
    let v = match flags.get("kernel").map(String::as_str).unwrap_or("auto") {
        "auto" => multicore_matmul::exec::kernel::variant(),
        "scalar" => KernelVariant::Scalar,
        "avx2" | "avx2_fma" => KernelVariant::Avx2Fma,
        "neon" => KernelVariant::Neon,
        other => {
            eprintln!("unknown kernel {other:?}");
            usage();
        }
    };
    if !v.is_available() {
        eprintln!("error: kernel {} is not available on this CPU", v.name());
        exit(1);
    }
    v
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1 << 20) as f64
}

/// `mmc ooc gen|multiply|verify` — the out-of-core streaming subsystem.
/// Every file argument that is missing, unreadable, or not a tiled
/// matrix produces a clean error and a nonzero exit, never a panic.
fn cmd_ooc(args: &[String]) {
    use multicore_matmul::ooc;
    let Some((sub, rest)) = args.split_first() else {
        eprintln!("ooc needs a subcommand: gen, multiply, verify");
        usage();
    };
    let flags = parse_flags(rest);
    match sub.as_str() {
        "gen" => {
            let out = req(&flags, "out");
            let rows: u32 = num(&flags, "rows", 0);
            let cols: u32 = num(&flags, "cols", 0);
            if rows == 0 || cols == 0 {
                eprintln!("--rows and --cols are required");
                usage();
            }
            let q: usize = num(&flags, "q", 32);
            let seed: u64 = num(&flags, "seed", 1);
            if let Err(e) = ooc::write_pseudo_random(std::path::Path::new(out), rows, cols, q, seed)
            {
                eprintln!("error: {e}");
                exit(1);
            }
            println!(
                "wrote {out}: {rows}x{cols} blocks of {q}x{q} (seed {seed}, {:.1} MiB)",
                mib(40 + rows as u64 * cols as u64 * (q * q * 8) as u64)
            );
        }
        "multiply" => {
            let a = req(&flags, "a").to_string();
            let b = req(&flags, "b").to_string();
            let out = req(&flags, "out").to_string();
            let budget = budget_flag(&flags, "mem-budget", None);
            let mut opts = ooc::OocOpts::new(budget);
            opts.io_threads = num(&flags, "io-threads", 2usize).max(1);
            opts.variant = kernel_flag(&flags);
            opts.machine = preset(&flags);
            opts.sigma_ratio_hint = num(&flags, "sigma-ratio", 0.1f64);
            if opts.sigma_ratio_hint <= 0.0 {
                eprintln!("--sigma-ratio must be positive");
                usage();
            }
            // Give the run its own trace job so recorder spans (and the
            // report's drift section) are attributable to this invocation.
            multicore_matmul::obs::span::new_job();
            let report = match ooc::ooc_multiply(
                std::path::Path::new(&a),
                std::path::Path::new(&b),
                std::path::Path::new(&out),
                &opts,
            ) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    exit(1);
                }
            };
            if let Some(path) = flags.get("trace-out") {
                if let Err(e) = std::fs::write(path, ooc::chrome_trace(&report)) {
                    eprintln!("error writing {path}: {e}");
                    exit(1);
                }
            }
            if flags.contains_key("json") {
                println!("{}", serde_json::to_string_pretty(&report).expect("serialize report"));
                return;
            }
            let s = report.staging;
            println!(
                "out-of-core C = A x B: {}x{}x{} blocks of {}x{} through a {:.1} MiB budget",
                report.m,
                report.n,
                report.z,
                report.q,
                report.q,
                mib(report.budget_bytes)
            );
            println!(
                "  staging: alpha = {}, beta = {}, ring depth {} (resident {} blocks; \
                 pack arenas add <= {:.1} MiB outside the budget)",
                s.alpha,
                s.beta,
                s.slots,
                s.resident_blocks(),
                mib(report.pack_arena_bound_bytes)
            );
            let sigma_f = match report.sigma_f_blocks_per_s {
                Some(s) => format!("measured sigma_F = {s:.0} blocks/s/thread"),
                None => format!(
                    "sigma_F unmeasured (no timed I/O); model assumes {:.0} blocks/s",
                    report.t_data3.sigma_f
                ),
            };
            println!(
                "  disk: read {:.1} MiB over {} panels, wrote {:.1} MiB; {sigma_f}",
                mib(report.prefetch.bytes_read),
                report.prefetch.panels_staged,
                mib(report.bytes_written),
            );
            println!(
                "  peak resident {:.2} MiB of {:.2} MiB budget (within budget: {})",
                mib(report.peak_resident_bytes),
                mib(report.budget_bytes),
                report.within_budget
            );
            println!(
                "  stalls: compute waited {:.3}s for disk, disk waited {:.3}s for buffers",
                report.prefetch.stall_seconds, report.prefetch.buffer_wait_seconds
            );
            println!("  {}", report.t_data3);
            println!(
                "  {:.3}s wall ({:.3}s compute, {} kernel, {} I/O threads); wrote {out}",
                report.elapsed_seconds, report.compute_seconds, report.kernel, report.io_threads
            );
            if flags.contains_key("drift") {
                if let Some(d) = &report.drift {
                    print!("{}", d.render_text());
                }
            }
            if !report.within_budget {
                exit(1);
            }
        }
        "verify" => {
            let a = req(&flags, "a");
            let b = req(&flags, "b");
            let c = req(&flags, "c");
            let variant = kernel_flag(&flags);
            let machine = preset(&flags);
            match ooc::ooc_verify(
                std::path::Path::new(a),
                std::path::Path::new(b),
                std::path::Path::new(c),
                variant,
                &machine,
            ) {
                Ok(0) => println!("{c} is bit-identical to the in-core {} product", variant.name()),
                Ok(mismatches) => {
                    eprintln!(
                        "error: {c} differs from the in-core product in {mismatches} elements"
                    );
                    exit(1);
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    exit(1);
                }
            }
        }
        other => {
            eprintln!("unknown ooc subcommand {other:?}");
            usage();
        }
    }
}

/// Combined `mmc drift --json` payload: one in-memory and one
/// out-of-core drift report over the same problem shape.
#[derive(Serialize, Deserialize)]
struct DriftSummary {
    schema_version: u32,
    order: u32,
    q: usize,
    band: f64,
    exec: DriftReport,
    ooc: DriftReport,
}

fn cmd_drift(flags: HashMap<String, String>) {
    use multicore_matmul::obs::span;
    use multicore_matmul::ooc;

    let machine = preset(&flags);
    let order: u32 = num(&flags, "order", 6);
    let q: usize = num(&flags, "q", 16);
    let seed: u64 = num(&flags, "seed", 1);
    let band: f64 = num(&flags, "band", multicore_matmul::obs::drift::DEFAULT_BAND);
    if order == 0 || q == 0 {
        eprintln!("--order and --q must be positive");
        usage();
    }
    if !span::enabled() {
        eprintln!("error: the span recorder is disabled (MMC_SPANS=off); drift needs spans");
        exit(1);
    }
    let variant = kernel_flag(&flags);

    // In-memory leg: one whole-problem tile so the five-loop closed
    // forms (m·z·⌈n/NC⌉, z·n, ...) apply to the trace exactly.
    let a = BlockMatrix::pseudo_random(order, order, q, seed);
    let b = BlockMatrix::pseudo_random(order, order, q, seed + 1);
    let tiling = Tiling { tile_m: order, tile_n: order, tile_k: 1 };
    let plan = multicore_matmul::exec::blocking::active_plan::<f64>();
    let (_c, run) = run_traced(&a, &b, tiling, variant, plan);
    let model = ExecModel::for_run(&a, &b, tiling, variant);
    let exec_report = exec_drift(&run, &model, band);

    // Out-of-core leg: the same shape streamed from disk through a
    // small budget, in a scratch directory we clean up afterwards.
    let block_bytes = (q * q * 8) as u64;
    let budget = budget_flag(&flags, "mem-budget", Some(24 * block_bytes));
    let dir = std::env::temp_dir().join(format!("mmc-drift-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error creating {}: {e}", dir.display());
        exit(1);
    }
    let (fa, fb, fc) = (dir.join("a.tiled"), dir.join("b.tiled"), dir.join("c.tiled"));
    let gen = ooc::write_pseudo_random(&fa, order, order, q, seed)
        .and_then(|()| ooc::write_pseudo_random(&fb, order, order, q, seed + 1));
    if let Err(e) = gen {
        eprintln!("error generating operands: {e}");
        exit(1);
    }
    let mut opts = ooc::OocOpts::new(budget);
    opts.variant = variant;
    opts.machine = machine;
    let ooc_job = span::new_job();
    let report = match ooc::ooc_multiply(&fa, &fb, &fc, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            let _ = std::fs::remove_dir_all(&dir);
            exit(1);
        }
    };
    let ooc_report = ooc_drift(&report, band);

    if let Some(path) = flags.get("trace-out") {
        // Both jobs stamp the process-wide epoch, so their spans merge
        // into one coherent timeline; registry totals ride along as
        // Chrome counter events.
        let mut merged = run.spans.clone();
        merged.extend(span::collect_job(ooc_job));
        merged.sort_by_key(|s| (s.start_ns, s.kind, s.thread));
        let counters: Vec<(String, f64)> = multicore_matmul::obs::global()
            .snapshot()
            .counters
            .into_iter()
            .map(|c| (c.name, c.value as f64))
            .collect();
        if let Err(e) = std::fs::write(path, spans_to_chrome("mmc drift", &merged, &counters)) {
            eprintln!("error writing {path}: {e}");
            let _ = std::fs::remove_dir_all(&dir);
            exit(1);
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    if flags.contains_key("json") {
        let summary = DriftSummary {
            schema_version: SCHEMA_VERSION,
            order,
            q,
            band,
            exec: exec_report,
            ooc: ooc_report,
        };
        println!("{}", serde_json::to_string_pretty(&summary).expect("serialize summary"));
    } else {
        println!(
            "drift check: {order}x{order} blocks of {q}x{q}, {} kernel, band ±{:.0}%",
            variant.name(),
            band * 100.0
        );
        print!("{}", exec_report.render_text());
        print!("{}", ooc_report.render_text());
    }
}

/// `mmc serve` — run the model-driven GEMM-as-a-service daemon until a
/// client sends `shutdown` (or the process is killed). The listening
/// line is printed (and flushed) first so wrappers can scrape the bound
/// port even when `--addr` asked for an ephemeral one.
fn cmd_serve(flags: HashMap<String, String>) {
    use multicore_matmul::serve::{ServeConfig, Server};
    let config = ServeConfig {
        addr: flags.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:0".into()),
        ram_budget_bytes: budget_flag(&flags, "ram-budget", Some(256 << 20)),
        max_concurrent: num(&flags, "workers", 4usize).max(1),
        machine: preset(&flags),
        band: num(&flags, "band", multicore_matmul::obs::drift::DEFAULT_BAND),
    };
    let budget = config.ram_budget_bytes;
    let workers = config.max_concurrent;
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error starting server: {e}");
            exit(1);
        }
    };
    println!(
        "mmc serve listening on {} (ram budget {:.1} MiB, {workers} workers)",
        server.local_addr(),
        mib(budget)
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.wait();
    println!("mmc serve: clean shutdown");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else { usage() };
    match cmd.as_str() {
        "simulate" => cmd_simulate(parse_flags(rest)),
        "plan" => cmd_plan(parse_flags(rest)),
        "exec" => cmd_exec(parse_flags(rest)),
        "drift" => cmd_drift(parse_flags(rest)),
        "lu" => cmd_lu(parse_flags(rest)),
        "profile" => cmd_profile(parse_flags(rest)),
        "counters" => cmd_counters(parse_flags(rest)),
        "trace" => cmd_trace(parse_flags(rest)),
        "figures" => cmd_figures(rest),
        "ooc" => cmd_ooc(rest),
        "serve" => cmd_serve(parse_flags(rest)),
        "list" => {
            for a in all_algorithms() {
                println!("{:<20} {}", a.id(), a.name());
            }
            println!("{:<20} Cache Oblivious (extension)", "cache_oblivious");
        }
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown command {other:?}");
            usage();
        }
    }
}
