//! `mmc serve` — a model-driven GEMM-as-a-service daemon.
//!
//! A long-running TCP server (std-only, zero new dependencies) that
//! accepts concurrent multiply jobs — in-memory shapes and out-of-core
//! `.tiled` paths — over the line-delimited JSON protocol of
//! [`protocol`], prices each one up front with the paper's model
//! ([`scheduler::price_mem`] / [`scheduler::price_ooc`]), and packs
//! compatible jobs onto a shared worker pool without ever overcommitting
//! the configured RAM budget ([`scheduler::Scheduler`]).
//!
//! Every dispatched job runs as a cancellable job unit
//! ([`mmc_exec::job::CancelToken`](crate::exec::CancelToken))
//! under its own span-trace job, and its completion report embeds the
//! predicted-vs-measured drift over the traced phases. The same port
//! answers `GET /metrics` with the Prometheus exposition of the global
//! registry.

pub mod protocol;
pub mod scheduler;

pub use protocol::{parse_request, Request};
pub use scheduler::{
    default_tiling, price_mem, price_ooc, JobPrice, JobReport, JobSpec, JobState, MemJobSpec,
    OocJobSpec, Rejection, Scheduler, ServeCounts, ServeStats,
};

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Instant;

use crate::exec::kernel::variants_available;
use crate::exec::{
    blocking, exec_drift, gemm_parallel_cancellable, BlockMatrix, CancelToken, ExecModel,
    KernelVariant, TracedRun,
};
use crate::obs::{span, SCHEMA_VERSION};
use crate::ooc::{ooc_multiply_cancellable, OocError, OocOpts, TiledFile};
use crate::sim::MachineConfig;
use crate::strassen::{strassen_multiply_cancellable, StrassenOpts};
use serde::Serialize;

/// How a [`Server`] is configured.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Total RAM budget for concurrently running jobs, bytes.
    pub ram_budget_bytes: u64,
    /// Maximum jobs on the pool at once.
    pub max_concurrent: usize,
    /// Machine model used for admission pricing.
    pub machine: MachineConfig,
    /// Drift band for per-job reports.
    pub band: f64,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            ram_budget_bytes: 256 << 20,
            max_concurrent: 4,
            machine: MachineConfig::quad_q32(),
            band: crate::obs::drift::DEFAULT_BAND,
        }
    }
}

/// FNV-1a over the little-endian bit patterns of `data` — bit-identity
/// evidence a client can verify against a direct-API run without
/// shipping the matrix.
pub fn checksum_f64(data: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for v in data {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// The kernel variant the server runs everything with: the best one the
/// host supports. Exposed so tests can reproduce results bit-exactly
/// through the direct APIs.
pub fn serve_variant() -> KernelVariant {
    variants_available().pop().unwrap_or(KernelVariant::Scalar)
}

struct Shared {
    scheduler: Scheduler,
    addr: SocketAddr,
}

impl Shared {
    /// Stop admitting and poke the accept loop awake with a self-connect.
    fn initiate_shutdown(&self) {
        self.scheduler.shutdown();
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running serve daemon. Dropping the handle does not stop it; call
/// [`Server::shutdown`] then [`Server::wait`] for a clean exit.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
    job_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind, spawn the accept loop and the dispatcher, and return.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener =
            TcpListener::bind(config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "unresolvable bind address")
            })?)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            scheduler: Scheduler::new(
                config.ram_budget_bytes,
                config.max_concurrent,
                config.machine,
                config.band,
            ),
            addr,
        });
        let job_handles: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let dispatcher = {
            let shared = Arc::clone(&shared);
            let handles = Arc::clone(&job_handles);
            thread::spawn(move || {
                while let Some((id, spec, price, token)) = shared.scheduler.next_runnable() {
                    let shared = Arc::clone(&shared);
                    let h =
                        thread::spawn(move || run_job(&shared.scheduler, id, spec, price, token));
                    handles.lock().unwrap().push(h);
                }
            })
        };

        let accept = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                for conn in listener.incoming() {
                    if shared.scheduler.is_shutdown() {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let shared = Arc::clone(&shared);
                    thread::spawn(move || {
                        let _ = handle_connection(stream, &shared);
                    });
                }
            })
        };

        Ok(Server { shared, accept: Some(accept), dispatcher: Some(dispatcher), job_handles })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The admission controller, for in-process inspection (tests, CLI).
    pub fn scheduler(&self) -> &Scheduler {
        &self.shared.scheduler
    }

    /// Begin a clean shutdown: stop admitting, cancel queued jobs, trip
    /// the tokens of running jobs, and unblock the accept loop.
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// Block until the accept loop, the dispatcher and every dispatched
    /// job thread have exited. Call [`Server::shutdown`] first (or let a
    /// client's `shutdown` command do it).
    pub fn wait(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        loop {
            let drained: Vec<JoinHandle<()>> =
                std::mem::take(&mut *self.job_handles.lock().unwrap());
            if drained.is_empty() {
                break;
            }
            for h in drained {
                let _ = h.join();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Job execution
// ---------------------------------------------------------------------------

fn run_job(sched: &Scheduler, id: u64, spec: JobSpec, price: JobPrice, token: CancelToken) {
    let started = Instant::now();
    let outcome = match &spec {
        JobSpec::Mem(m) => run_mem_job(sched, id, m, &price, &token),
        JobSpec::Ooc(o) => run_ooc_job(sched, id, o, &price, &token),
    };
    crate::obs::global().histogram("serve.job_us").observe(started.elapsed().as_micros() as u64);
    sched.finish(id, outcome);
}

fn run_mem_job(
    sched: &Scheduler,
    id: u64,
    spec: &MemJobSpec,
    price: &JobPrice,
    token: &CancelToken,
) -> JobState {
    let started = Instant::now();
    let tiling = default_tiling(&sched.machine);
    let variant = serve_variant();
    let plan = blocking::active_plan::<f64>();
    let a = BlockMatrix::pseudo_random(spec.m, spec.z, spec.q, spec.seed_a);
    let b = BlockMatrix::pseudo_random(spec.z, spec.n, spec.q, spec.seed_b);
    let trace_job = span::new_job();
    let epoch_ns = span::now_ns();
    let strassen = spec.algo == "strassen";
    let c = if strassen {
        let opts = StrassenOpts { cutoff: crate::strassen::DEFAULT_CUTOFF, variant, plan, tiling };
        strassen_multiply_cancellable(&a, &b, &opts, Some(token)).map(|(c, _report)| c)
    } else {
        gemm_parallel_cancellable(&a, &b, tiling, variant, plan, token)
    };
    let spans = span::collect_job(trace_job);
    let Some(c) = c else {
        return JobState::Cancelled;
    };
    // The drift model prices the classic 5-loop schedule; a Strassen run
    // intentionally does less multiplication work, so comparing it would
    // only report the algorithmic gap as "drift".
    let drift = if strassen {
        None
    } else {
        let run = TracedRun { job: trace_job, epoch_ns, variant, plan, spans };
        let model = ExecModel::for_run(&a, &b, tiling, variant);
        Some(exec_drift(&run, &model, sched.band))
    };
    JobState::Done(Box::new(JobReport {
        schema_version: SCHEMA_VERSION,
        job_id: id,
        kind: "mem".into(),
        trace_job,
        elapsed_seconds: started.elapsed().as_secs_f64(),
        price: price.clone(),
        peak_resident_bytes: price.footprint_bytes,
        within_budget: true,
        checksum: Some(checksum_f64(c.data())),
        out: None,
        sigma_f_blocks_per_s: None,
        drift,
    }))
}

fn run_ooc_job(
    sched: &Scheduler,
    id: u64,
    spec: &OocJobSpec,
    price: &JobPrice,
    token: &CancelToken,
) -> JobState {
    let started = Instant::now();
    let opts = OocOpts {
        mem_budget_bytes: spec.mem_budget_bytes,
        io_threads: spec.io_threads.max(1),
        variant: serve_variant(),
        machine: sched.machine.clone(),
        sigma_ratio_hint: 0.1,
    };
    match ooc_multiply_cancellable(
        Path::new(&spec.a),
        Path::new(&spec.b),
        Path::new(&spec.out),
        &opts,
        token,
    ) {
        Err(OocError::Cancelled) => JobState::Cancelled,
        Err(e) => JobState::Failed(e.to_string()),
        Ok(report) => JobState::Done(Box::new(JobReport {
            schema_version: SCHEMA_VERSION,
            job_id: id,
            kind: "ooc".into(),
            trace_job: report.trace_job,
            elapsed_seconds: started.elapsed().as_secs_f64(),
            price: price.clone(),
            peak_resident_bytes: report.peak_resident_bytes + report.pack_arena_bound_bytes,
            within_budget: report.within_budget,
            checksum: None,
            out: Some(spec.out.clone()),
            sigma_f_blocks_per_s: report.sigma_f_blocks_per_s,
            drift: report.drift.clone(),
        })),
    }
}

// ---------------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------------

#[derive(Serialize)]
struct SubmitResp {
    ok: bool,
    job_id: u64,
    price: JobPrice,
}

#[derive(Serialize)]
struct RejectResp {
    ok: bool,
    rejected: bool,
    error: String,
    predicted_footprint_bytes: Option<u64>,
    ram_budget_bytes: u64,
}

#[derive(Serialize)]
struct JobResp {
    ok: bool,
    job_id: u64,
    state: String,
    price: JobPrice,
    report: Option<JobReport>,
    error: Option<String>,
}

#[derive(Serialize)]
struct StatsResp {
    ok: bool,
    stats: ServeStats,
}

#[derive(Serialize)]
struct MetricsResp {
    ok: bool,
    text: String,
}

#[derive(Serialize)]
struct ShutdownResp {
    ok: bool,
    shutting_down: bool,
}

fn job_resp(id: u64, state: JobState, price: JobPrice) -> String {
    let (report, error) = match &state {
        JobState::Done(r) => (Some((**r).clone()), None),
        JobState::Failed(e) => (None, Some(e.clone())),
        _ => (None, None),
    };
    protocol::response_line(&JobResp {
        ok: true,
        job_id: id,
        state: state.name().to_string(),
        price,
        report,
        error,
    })
}

/// Handle one parsed request; the bool says whether to start server
/// shutdown after writing the response.
fn handle_request(req: Request, shared: &Shared) -> (String, bool) {
    let sched = &shared.scheduler;
    let submit = |spec: JobSpec, priced: Result<JobPrice, String>| match priced {
        Err(error) => {
            sched.note_rejected();
            protocol::response_line(&RejectResp {
                ok: false,
                rejected: true,
                error,
                predicted_footprint_bytes: None,
                ram_budget_bytes: sched.ram_budget_bytes,
            })
        }
        Ok(price) => match sched.submit(spec, price) {
            Ok((job_id, price)) => protocol::response_line(&SubmitResp { ok: true, job_id, price }),
            Err(rej) => protocol::response_line(&RejectResp {
                ok: false,
                rejected: true,
                error: rej.error,
                predicted_footprint_bytes: rej.predicted_footprint_bytes,
                ram_budget_bytes: rej.ram_budget_bytes,
            }),
        },
    };
    match req {
        Request::SubmitMem(spec) => {
            let priced = price_mem(&spec, &sched.machine);
            (submit(JobSpec::Mem(spec), priced), false)
        }
        Request::SubmitOoc(spec) => {
            let priced = ooc_shape(&spec)
                .and_then(|(m, n, z, q)| price_ooc(&spec, m, n, z, q, &sched.machine));
            (submit(JobSpec::Ooc(spec), priced), false)
        }
        Request::Status(id) => (
            match sched.status(id) {
                Some((state, price)) => job_resp(id, state, price),
                None => protocol::error_line(&format!("unknown job {id}")),
            },
            false,
        ),
        Request::Wait(id) => (
            match sched.wait(id) {
                Some((state, price)) => job_resp(id, state, price),
                None => protocol::error_line(&format!("unknown job {id}")),
            },
            false,
        ),
        Request::Cancel(id) => (
            match sched.cancel(id) {
                Some(state) => protocol::response_line(&JobResp {
                    ok: true,
                    job_id: id,
                    state: state.to_string(),
                    price: sched.status(id).map(|(_, p)| p).unwrap_or(JobPrice {
                        flops: 0.0,
                        t_data: 0.0,
                        footprint_bytes: 0,
                        staging: None,
                    }),
                    report: None,
                    error: None,
                }),
                None => protocol::error_line(&format!("unknown job {id}")),
            },
            false,
        ),
        Request::Stats => {
            (protocol::response_line(&StatsResp { ok: true, stats: sched.stats() }), false)
        }
        Request::Metrics => (
            protocol::response_line(&MetricsResp {
                ok: true,
                text: crate::obs::global().render_prometheus(),
            }),
            false,
        ),
        Request::Shutdown => {
            (protocol::response_line(&ShutdownResp { ok: true, shutting_down: true }), true)
        }
    }
}

/// Validate an out-of-core submission's files and return the product
/// shape `(m, n, z, q)` for pricing.
fn ooc_shape(spec: &OocJobSpec) -> Result<(u32, u32, u32, usize), String> {
    let a = TiledFile::open(Path::new(&spec.a)).map_err(|e| format!("open {}: {e}", spec.a))?;
    let b = TiledFile::open(Path::new(&spec.b)).map_err(|e| format!("open {}: {e}", spec.b))?;
    let (ha, hb) = (a.header(), b.header());
    if ha.q != hb.q {
        return Err(format!("block size mismatch: A has q={}, B has q={}", ha.q, hb.q));
    }
    if ha.cols != hb.rows {
        return Err(format!(
            "shape mismatch: A is {}x{} blocks, B is {}x{} blocks",
            ha.rows, ha.cols, hb.rows, hb.cols
        ));
    }
    Ok((ha.rows, hb.cols, ha.cols, ha.q))
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    let mut first = true;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        if first && (line.starts_with("GET ") || line.starts_with("HEAD ")) {
            return serve_http(&line, &mut reader, &mut writer);
        }
        first = false;
        if line.trim().is_empty() {
            continue;
        }
        let (resp, shutdown_after) = match protocol::parse_request(&line) {
            Ok(req) => handle_request(req, shared),
            Err(e) => (protocol::error_line(&e), false),
        };
        writer.write_all(resp.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if shutdown_after {
            shared.initiate_shutdown();
            return Ok(());
        }
    }
}

/// Minimal HTTP for scrapers: `GET /metrics` returns the Prometheus
/// exposition; anything else 404s. One request per connection.
fn serve_http(
    request_line: &str,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
) -> io::Result<()> {
    // Drain the request headers so the client sees a clean close.
    let mut header = String::new();
    while reader.read_line(&mut header)? > 0 {
        if header == "\r\n" || header == "\n" {
            break;
        }
        header.clear();
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, body) = if path == "/metrics" || path.starts_with("/metrics?") {
        ("200 OK", crate::obs::global().render_prometheus())
    } else {
        ("404 Not Found", format!("no such path {path}; try /metrics\n"))
    };
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(body.as_bytes())?;
    writer.flush()?;
    let _ = writer.shutdown(Shutdown::Both);
    let _ = reader.read(&mut [0u8; 1]);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_order_sensitive_and_stable() {
        let a = [1.0f64, 2.0, 3.0];
        let b = [3.0f64, 2.0, 1.0];
        assert_eq!(checksum_f64(&a), checksum_f64(&a));
        assert_ne!(checksum_f64(&a), checksum_f64(&b));
        assert_ne!(checksum_f64(&[0.0]), checksum_f64(&[-0.0]), "bit patterns, not values");
    }

    #[test]
    fn serve_variant_is_available_on_this_host() {
        assert!(serve_variant().is_available());
    }
}
