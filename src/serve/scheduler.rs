//! Model-driven admission and scheduling for the serve daemon.
//!
//! Every submitted job is priced *before* it runs, straight from the
//! paper's closed forms: predicted FLOPs (`2mnzq³`), the three-term
//! `T_data` ([`TData3`] — in-core jobs through [`TData3::in_core`],
//! out-of-core jobs with `M_F` from [`OocStaging::disk_blocks`]), and a
//! peak-resident-bytes footprint (operands plus the packing arenas for
//! in-memory shapes, the staged ring plus arenas for `.tiled` jobs).
//!
//! The admission controller is the Tradeoff constraint lifted to the
//! server: jobs whose predicted footprint exceeds the whole RAM budget
//! are rejected at submission (the rejection carries the predicted
//! footprint); admitted jobs queue until their footprint fits in
//! `budget − in_use`, so the pool stays saturated with compatible jobs
//! without ever overcommitting RAM — first-fit over the FIFO queue, the
//! same greedy packing [`mmc_core::params::ooc_staging`] applies to one
//! job's panels.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

use crate::core::params::{ooc_staging, CoreGrid};
use crate::core::{formulas, OocStaging, ProblemSpec};
use crate::exec::{blocking, CancelToken, Tiling};
use crate::obs::DriftReport;
use crate::ooc::{default_sigma_f, RING_SLOTS};
use crate::sim::{strassen as sim_strassen, CostEnv, MachineConfig, TData3};
use serde::{Deserialize, Serialize};

/// An in-memory multiply: deterministic pseudo-random operands, so the
/// client (and the tests) can regenerate them bit-exactly.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MemJobSpec {
    /// `C` block rows.
    pub m: u32,
    /// `C` block columns.
    pub n: u32,
    /// Inner block dimension.
    pub z: u32,
    /// Block side in elements.
    pub q: usize,
    /// Seed for `A = pseudo_random(m, z, q, seed_a)`.
    pub seed_a: u64,
    /// Seed for `B = pseudo_random(z, n, q, seed_b)`.
    pub seed_b: u64,
    /// Algorithm the job runs: `"classic"` (packed 5-loop) or
    /// `"strassen"` (Winograd recursion over Morton blocks). Strassen
    /// jobs are admitted with the recursion workspace added to their
    /// footprint.
    #[serde(default = "classic_algo")]
    pub algo: String,
}

// Named to avoid the substring "default": the vendored derive locates
// the fallback path by splitting the attribute text on that keyword.
fn classic_algo() -> String {
    "classic".into()
}

/// An out-of-core multiply over `.tiled` files.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OocJobSpec {
    /// Path of the `A` tiled file.
    pub a: String,
    /// Path of the `B` tiled file.
    pub b: String,
    /// Path the tiled product is written to.
    pub out: String,
    /// Staging budget for this job, bytes.
    pub mem_budget_bytes: u64,
    /// Dedicated I/O threads for this job's prefetcher.
    pub io_threads: usize,
}

/// What a client asked the server to run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum JobSpec {
    /// In-memory shapes.
    Mem(MemJobSpec),
    /// Out-of-core `.tiled` paths.
    Ooc(OocJobSpec),
}

impl JobSpec {
    /// `"mem"` or `"ooc"`, for reports and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Mem(_) => "mem",
            JobSpec::Ooc(_) => "ooc",
        }
    }
}

/// The up-front model price of a job — computed at submission, attached
/// to the admission decision and the completion report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobPrice {
    /// Predicted floating-point operations, `2·m·n·z·q³`.
    pub flops: f64,
    /// Predicted three-term `T_data` total, in the machine model's time
    /// units (`M_F/σ_F + M_S/σ_S + M_D/σ_D`).
    pub t_data: f64,
    /// Predicted peak resident bytes while the job runs — what the
    /// admission controller reserves out of the RAM budget.
    pub footprint_bytes: u64,
    /// The `(α, β)` staging the job's budget buys (out-of-core only).
    #[serde(default)]
    pub staging: Option<OocStaging>,
}

/// The tiling the server hands every in-memory job: the Tradeoff
/// parameters of the configured machine, falling back to Shared Opt and
/// then to a fixed 4-block tile. Exposed so tests can reproduce server
/// results through the direct APIs (any tiling gives a bit-identical
/// product for a fixed kernel variant, but sharing one keeps the span
/// traces comparable too).
pub fn default_tiling(machine: &MachineConfig) -> Tiling {
    Tiling::tradeoff(machine).or_else(|| Tiling::shared_opt(machine)).unwrap_or(Tiling {
        tile_m: 4,
        tile_n: 4,
        tile_k: 4,
    })
}

/// Worker count the packing-arena bound assumes: the compute pool's
/// threads plus the coordinating caller.
fn arena_workers() -> u64 {
    std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(4) + 1
}

/// Analytic bound on the thread-local packing arenas of one in-core
/// multiply: per worker, one `MC×KC` `A` panel and one `KC×NC` `B`
/// panel (each clamped to the problem extents).
fn pack_arena_bound(m: u32, n: u32, z: u32, q: usize) -> u64 {
    let plan = blocking::active_plan::<f64>();
    let (me, ne, ze) = (m as u64 * q as u64, n as u64 * q as u64, z as u64 * q as u64);
    let a_panel = (plan.mc as u64).min(me) * (plan.kc as u64).min(ze);
    let b_panel = (plan.kc as u64).min(ze) * (plan.nc as u64).min(ne);
    arena_workers() * (a_panel + b_panel) * 8
}

/// The in-core miss predictions `(M_S, M_D)` of the configured machine
/// for an `m×n×z` block product (Tradeoff, falling back to Shared Opt).
fn in_core_misses(m: u32, n: u32, z: u32, machine: &MachineConfig) -> (f64, f64) {
    let problem = ProblemSpec::new(m, n, z);
    formulas::tradeoff(&problem, machine)
        .or_else(|| formulas::shared_opt(&problem, machine))
        .map(|p| (p.ms, p.md))
        .unwrap_or((0.0, 0.0))
}

/// Price an in-memory job: all three operands resident plus the packing
/// arenas; no disk leg in `T_data`. Strassen jobs additionally reserve
/// the Morton copies of the padded operands plus the pooled recursion
/// workspace, and their `T_data`/FLOPs come from the recursion's closed
/// forms ([`sim_strassen`]) instead of the classic schedule predictions.
pub fn price_mem(spec: &MemJobSpec, machine: &MachineConfig) -> Result<JobPrice, String> {
    let MemJobSpec { m, n, z, q, .. } = *spec;
    if m == 0 || n == 0 || z == 0 || q == 0 {
        return Err(format!("job shape must be positive, got m={m} n={n} z={z} q={q}"));
    }
    let block_bytes = (q * q * 8) as u64;
    let operand_blocks = m as u64 * z as u64 + z as u64 * n as u64 + m as u64 * n as u64;
    let footprint_bytes = operand_blocks
        .checked_mul(block_bytes)
        .and_then(|b| b.checked_add(pack_arena_bound(m, n, z, q)))
        .ok_or_else(|| format!("job footprint overflows: {operand_blocks} blocks of {q}x{q}"))?;
    if spec.algo == "strassen" {
        let base = m.max(n).max(z) as u64;
        let plan = sim_strassen::strassen_plan(base, crate::strassen::DEFAULT_CUTOFF as u64);
        // Three padded Morton copies plus the pooled recursion temps —
        // the workspace term the admission controller reserves on top
        // of the row-major operands.
        let s2 = plan.padded_side.saturating_mul(plan.padded_side);
        let extra_blocks = s2
            .checked_mul(3)
            .and_then(|b| b.checked_add(sim_strassen::workspace_blocks(&plan)))
            .unwrap_or(u64::MAX);
        let footprint_bytes = extra_blocks
            .checked_mul(block_bytes)
            .and_then(|b| b.checked_add(footprint_bytes))
            .ok_or_else(|| {
                format!("strassen workspace overflows: {extra_blocks} blocks of {q}x{q}")
            })?;
        let tiling = default_tiling(machine);
        let env = CostEnv::for_machine(
            machine,
            tiling.tile_m as u64,
            tiling.tile_k as u64,
            tiling.tile_n as u64,
        );
        let t_data =
            sim_strassen::strassen_traffic(&plan, &env).t_data(machine.sigma_s, machine.sigma_d);
        let flops = sim_strassen::flops(&plan, q as u64) as f64;
        return Ok(JobPrice { flops, t_data, footprint_bytes, staging: None });
    }
    let (ms, md) = in_core_misses(m, n, z, machine);
    let t_data = TData3::in_core(ms, md, machine).total();
    let flops = 2.0 * (q as f64).powi(3) * m as f64 * n as f64 * z as f64;
    Ok(JobPrice { flops, t_data, footprint_bytes, staging: None })
}

/// Price an out-of-core job from its shape and staging budget: the
/// resident footprint is the `(α, β)` ring the budget buys (`C` tile
/// plus both operand streams, [`OocStaging::resident_blocks`]) plus the
/// in-core packing arenas; `T_data`'s disk leg prices the staging
/// predictor's traffic at the machine's assumed disk bandwidth.
pub fn price_ooc(
    spec: &OocJobSpec,
    m: u32,
    n: u32,
    z: u32,
    q: usize,
    machine: &MachineConfig,
) -> Result<JobPrice, String> {
    let block_bytes = (q * q * 8) as u64;
    let budget_blocks = spec.mem_budget_bytes / block_bytes;
    let staging = ooc_staging(budget_blocks, RING_SLOTS, 0.1, 1.0).ok_or_else(|| {
        format!(
            "mem_budget of {} bytes is below the minimal out-of-core staging footprint \
             ({} blocks of {q}x{q})",
            spec.mem_budget_bytes,
            1 + 2 * RING_SLOTS as u64
        )
    })?;
    // The inner compute tiling clamps the arena like the ooc driver's
    // √p split does.
    let pr = CoreGrid::square(machine.cores).map(|g| g.rows).unwrap_or(1).max(1);
    let tile = staging.alpha.div_ceil(pr).max(1);
    let arena = arena_workers() * (2 * tile as u64) * staging.beta as u64 * block_bytes;
    let footprint_bytes = staging.resident_blocks() * block_bytes + arena;
    let (ms, md) = in_core_misses(m, n, z, machine);
    let t_data = TData3 {
        mf: staging.disk_blocks(m, n, z) as f64,
        ms,
        md,
        sigma_f: default_sigma_f(machine, 0.1),
        sigma_s: machine.sigma_s,
        sigma_d: machine.sigma_d,
    }
    .total();
    let flops = 2.0 * (q as f64).powi(3) * m as f64 * n as f64 * z as f64;
    Ok(JobPrice { flops, t_data, footprint_bytes, staging: Some(staging) })
}

/// The completion report of one served job, embedded in `status`/`wait`
/// responses — the model price it was admitted under next to what
/// actually happened, including the per-request span-trace job id and
/// the predicted-vs-measured drift.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobReport {
    /// Report schema version ([`crate::obs::SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Server-assigned job id.
    pub job_id: u64,
    /// `"mem"` or `"ooc"`.
    pub kind: String,
    /// The span-trace job this request recorded under.
    pub trace_job: u64,
    /// Wall-clock seconds from dispatch to completion.
    pub elapsed_seconds: f64,
    /// The up-front model price the job was admitted under.
    pub price: JobPrice,
    /// Measured peak resident bytes (out-of-core jobs report the
    /// pipeline's measurement; in-memory jobs their reserved footprint).
    pub peak_resident_bytes: u64,
    /// Whether the job stayed within its reserved footprint.
    pub within_budget: bool,
    /// FNV-1a checksum over the result's element bits (in-memory jobs)
    /// — bit-identity evidence without shipping the matrix.
    #[serde(default)]
    pub checksum: Option<u64>,
    /// Path of the written `.tiled` product (out-of-core jobs).
    #[serde(default)]
    pub out: Option<String>,
    /// Measured disk bandwidth (out-of-core jobs; `None` when no timed
    /// I/O — see [`crate::ooc::OocReport`]).
    #[serde(default)]
    pub sigma_f_blocks_per_s: Option<f64>,
    /// Predicted-vs-measured drift over the job's traced phases.
    #[serde(default)]
    pub drift: Option<DriftReport>,
}

/// Where a job is in its lifecycle.
#[derive(Clone, Debug)]
pub enum JobState {
    /// Admitted, waiting for its footprint to fit.
    Queued,
    /// Dispatched onto the worker pool.
    Running,
    /// Finished; the report is the terminal artifact.
    Done(Box<JobReport>),
    /// Cancelled (queued or mid-run).
    Cancelled,
    /// The job errored (bad file, shape mismatch, …).
    Failed(String),
}

impl JobState {
    /// Wire name of the state.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed(_) => "failed",
        }
    }

    /// Queued and running jobs are not terminal.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobState::Queued | JobState::Running)
    }
}

/// One tracked job.
#[derive(Clone, Debug)]
pub struct JobEntry {
    /// What to run.
    pub spec: JobSpec,
    /// The model price it was admitted under.
    pub price: JobPrice,
    /// Cooperative cancellation handle (shared with the worker).
    pub token: CancelToken,
    /// Lifecycle state.
    pub state: JobState,
}

/// Aggregate serve counters, mirrored into the metrics registry.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct ServeCounts {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs refused at admission (footprint over budget, bad spec).
    pub rejected: u64,
    /// Jobs that completed with a report.
    pub completed: u64,
    /// Jobs cancelled before completing.
    pub cancelled: u64,
    /// Jobs that errored.
    pub failed: u64,
}

struct SchedState {
    next_id: u64,
    queue: VecDeque<u64>,
    jobs: HashMap<u64, JobEntry>,
    ram_in_use: u64,
    ram_peak: u64,
    running: usize,
    shutdown: bool,
    counts: ServeCounts,
}

/// A snapshot of the scheduler for the `stats` command.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeStats {
    /// Configured RAM budget, bytes.
    pub ram_budget_bytes: u64,
    /// Footprint bytes currently reserved by running jobs.
    pub ram_in_use_bytes: u64,
    /// High-water mark of `ram_in_use_bytes`.
    pub ram_peak_bytes: u64,
    /// Jobs waiting for room.
    pub queued: usize,
    /// Jobs on the pool right now.
    pub running: usize,
    /// Aggregate lifecycle counters.
    pub counts: ServeCounts,
}

/// Why a submission was refused, with the evidence the client needs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Rejection {
    /// Human-readable reason.
    pub error: String,
    /// The predicted footprint that did not fit (when priced).
    #[serde(default)]
    pub predicted_footprint_bytes: Option<u64>,
    /// The budget it was measured against.
    pub ram_budget_bytes: u64,
}

/// The admission controller and job table. All synchronization lives
/// here; the server's dispatcher and connection threads share one
/// instance.
pub struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
    /// Total RAM budget for concurrently running jobs, bytes.
    pub ram_budget_bytes: u64,
    /// Maximum jobs on the pool at once.
    pub max_concurrent: usize,
    /// Machine model used for pricing.
    pub machine: MachineConfig,
    /// Drift band for per-job reports.
    pub band: f64,
}

impl Scheduler {
    /// A scheduler with an empty table.
    pub fn new(
        ram_budget_bytes: u64,
        max_concurrent: usize,
        machine: MachineConfig,
        band: f64,
    ) -> Scheduler {
        Scheduler {
            state: Mutex::new(SchedState {
                next_id: 1,
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                ram_in_use: 0,
                ram_peak: 0,
                running: 0,
                shutdown: false,
                counts: ServeCounts::default(),
            }),
            cv: Condvar::new(),
            ram_budget_bytes,
            max_concurrent: max_concurrent.max(1),
            machine,
            band,
        }
    }

    fn registry(&self) -> &'static crate::obs::Registry {
        crate::obs::global()
    }

    /// Count a submission refused before pricing even produced a
    /// footprint (unreadable tiled file, degenerate shape, …), so the
    /// rejection counters cover every refused request.
    pub fn note_rejected(&self) {
        let mut st = self.state.lock().unwrap();
        st.counts.rejected += 1;
        self.registry().counter("serve.jobs_rejected").add(1);
    }

    /// Admit or reject `spec` at its model price. Admitted jobs enter
    /// the FIFO queue and get an id; rejected jobs never enter the
    /// table, and the rejection carries the predicted footprint.
    pub fn submit(&self, spec: JobSpec, price: JobPrice) -> Result<(u64, JobPrice), Rejection> {
        let mut st = self.state.lock().unwrap();
        if st.shutdown {
            st.counts.rejected += 1;
            self.registry().counter("serve.jobs_rejected").add(1);
            return Err(Rejection {
                error: "server is shutting down".into(),
                predicted_footprint_bytes: Some(price.footprint_bytes),
                ram_budget_bytes: self.ram_budget_bytes,
            });
        }
        if price.footprint_bytes > self.ram_budget_bytes {
            st.counts.rejected += 1;
            self.registry().counter("serve.jobs_rejected").add(1);
            return Err(Rejection {
                error: format!(
                    "predicted footprint {} bytes exceeds the server RAM budget {} bytes",
                    price.footprint_bytes, self.ram_budget_bytes
                ),
                predicted_footprint_bytes: Some(price.footprint_bytes),
                ram_budget_bytes: self.ram_budget_bytes,
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        st.jobs.insert(
            id,
            JobEntry {
                spec,
                price: price.clone(),
                token: CancelToken::new(),
                state: JobState::Queued,
            },
        );
        st.queue.push_back(id);
        st.counts.submitted += 1;
        self.registry().counter("serve.jobs_submitted").add(1);
        drop(st);
        self.cv.notify_all();
        Ok((id, price))
    }

    /// Dispatcher side: block until a queued job fits in the free
    /// budget and a pool slot is open, then reserve its footprint and
    /// return it. `None` once the scheduler is shut down and drained.
    pub fn next_runnable(&self) -> Option<(u64, JobSpec, JobPrice, CancelToken)> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.shutdown {
                return None;
            }
            if st.running < self.max_concurrent {
                let free = self.ram_budget_bytes - st.ram_in_use;
                // First-fit over the FIFO queue: skip jobs too big for
                // the current free budget so smaller compatible jobs
                // behind them keep the pool saturated.
                let slot = st.queue.iter().position(|id| st.jobs[id].price.footprint_bytes <= free);
                if let Some(pos) = slot {
                    let id = st.queue.remove(pos).unwrap();
                    let entry = st.jobs.get_mut(&id).unwrap();
                    entry.state = JobState::Running;
                    let (spec, price, token) =
                        (entry.spec.clone(), entry.price.clone(), entry.token.clone());
                    st.running += 1;
                    st.ram_in_use += price.footprint_bytes;
                    st.ram_peak = st.ram_peak.max(st.ram_in_use);
                    let reg = self.registry();
                    reg.gauge("serve.ram_in_use_bytes").set(st.ram_in_use as i64);
                    reg.gauge("serve.ram_peak_bytes").set(st.ram_peak as i64);
                    return Some((id, spec, price, token));
                }
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Worker side: record the terminal state of a dispatched job and
    /// release its footprint.
    pub fn finish(&self, id: u64, outcome: JobState) {
        debug_assert!(outcome.is_terminal());
        let mut st = self.state.lock().unwrap();
        let reg = self.registry();
        if let Some(entry) = st.jobs.get_mut(&id) {
            let footprint = entry.price.footprint_bytes;
            match &outcome {
                JobState::Done(_) => {
                    st.counts.completed += 1;
                    reg.counter("serve.jobs_completed").add(1);
                }
                JobState::Cancelled => {
                    st.counts.cancelled += 1;
                    reg.counter("serve.jobs_cancelled").add(1);
                }
                _ => {
                    st.counts.failed += 1;
                    reg.counter("serve.jobs_failed").add(1);
                }
            }
            let entry = st.jobs.get_mut(&id).unwrap();
            entry.state = outcome;
            st.ram_in_use -= footprint;
            st.running -= 1;
            reg.gauge("serve.ram_in_use_bytes").set(st.ram_in_use as i64);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// The job's current state (cloned), or `None` for an unknown id.
    pub fn status(&self, id: u64) -> Option<(JobState, JobPrice)> {
        let st = self.state.lock().unwrap();
        st.jobs.get(&id).map(|e| (e.state.clone(), e.price.clone()))
    }

    /// Block until the job reaches a terminal state and return it.
    pub fn wait(&self, id: u64) -> Option<(JobState, JobPrice)> {
        let mut st = self.state.lock().unwrap();
        loop {
            match st.jobs.get(&id) {
                None => return None,
                Some(e) if e.state.is_terminal() => {
                    return Some((e.state.clone(), e.price.clone()))
                }
                Some(_) => st = self.cv.wait(st).unwrap(),
            }
        }
    }

    /// Cancel a job: a queued job leaves the queue immediately; a
    /// running job's token is tripped and the worker observes it at the
    /// next macro-loop / panel-stage boundary. Returns the state name
    /// after the request, or `None` for an unknown id.
    pub fn cancel(&self, id: u64) -> Option<&'static str> {
        let mut st = self.state.lock().unwrap();
        let entry = st.jobs.get(&id)?;
        match entry.state {
            JobState::Queued => {
                st.queue.retain(|&q| q != id);
                let entry = st.jobs.get_mut(&id).unwrap();
                entry.state = JobState::Cancelled;
                st.counts.cancelled += 1;
                self.registry().counter("serve.jobs_cancelled").add(1);
                drop(st);
                self.cv.notify_all();
                Some("cancelled")
            }
            JobState::Running => {
                entry.token.cancel();
                Some("cancelling")
            }
            ref terminal => Some(terminal.name()),
        }
    }

    /// Stop admitting, cancel everything queued, and trip the tokens of
    /// running jobs. The dispatcher drains once running jobs finish.
    pub fn shutdown(&self) {
        let mut st = self.state.lock().unwrap();
        st.shutdown = true;
        let queued: Vec<u64> = st.queue.drain(..).collect();
        for id in &queued {
            if let Some(e) = st.jobs.get_mut(id) {
                e.state = JobState::Cancelled;
                st.counts.cancelled += 1;
                self.registry().counter("serve.jobs_cancelled").add(1);
            }
        }
        for e in st.jobs.values() {
            if matches!(e.state, JobState::Running) {
                e.token.cancel();
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Has [`Scheduler::shutdown`] been called?
    pub fn is_shutdown(&self) -> bool {
        self.state.lock().unwrap().shutdown
    }

    /// Block until no job is running (used by the server's clean exit).
    pub fn drain(&self) {
        let mut st = self.state.lock().unwrap();
        while st.running > 0 {
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Snapshot for the `stats` command.
    pub fn stats(&self) -> ServeStats {
        let st = self.state.lock().unwrap();
        ServeStats {
            ram_budget_bytes: self.ram_budget_bytes,
            ram_in_use_bytes: st.ram_in_use,
            ram_peak_bytes: st.ram_peak,
            queued: st.queue.len(),
            running: st.running,
            counts: st.counts,
        }
    }

    /// High-water mark of reserved footprint bytes — the budget
    /// evidence the integration tests assert on.
    pub fn ram_peak_bytes(&self) -> u64 {
        self.state.lock().unwrap().ram_peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_spec(m: u32, n: u32, z: u32, q: usize) -> MemJobSpec {
        MemJobSpec { m, n, z, q, seed_a: 1, seed_b: 2, algo: "classic".into() }
    }

    #[test]
    fn mem_price_counts_operands_and_arenas() {
        let machine = MachineConfig::quad_q32();
        let p = price_mem(&mem_spec(4, 5, 6, 8), &machine).unwrap();
        let operand_bytes = (4 * 6 + 6 * 5 + 4 * 5) as u64 * (8 * 8 * 8) as u64;
        assert!(p.footprint_bytes >= operand_bytes);
        assert_eq!(p.flops, 2.0 * 512.0 * 4.0 * 5.0 * 6.0);
        assert!(p.t_data.is_finite() && p.t_data > 0.0);
        assert!(p.staging.is_none());
        assert!(price_mem(&mem_spec(0, 1, 1, 4), &machine).is_err());
    }

    #[test]
    fn strassen_price_adds_workspace_and_sub_cubic_flops() {
        let machine = MachineConfig::quad_q32();
        let classic = price_mem(&mem_spec(16, 16, 16, 8), &machine).unwrap();
        let mut spec = mem_spec(16, 16, 16, 8);
        spec.algo = "strassen".into();
        let strassen = price_mem(&spec, &machine).unwrap();
        // Same operands, plus Morton copies and pooled recursion temps.
        assert!(
            strassen.footprint_bytes > classic.footprint_bytes,
            "strassen footprint {} must exceed classic {}",
            strassen.footprint_bytes,
            classic.footprint_bytes
        );
        let plan = sim_strassen::strassen_plan(16, crate::strassen::DEFAULT_CUTOFF as u64);
        assert!(plan.depth > 0, "16 blocks above the default cutoff must recurse");
        let extra = (3 * plan.padded_side * plan.padded_side
            + sim_strassen::workspace_blocks(&plan))
            * (8 * 8 * 8) as u64;
        assert_eq!(strassen.footprint_bytes, classic.footprint_bytes + extra);
        // 7^d leaf work beats 2q³mnz.
        assert!(strassen.flops < classic.flops);
        assert_eq!(strassen.flops, sim_strassen::flops(&plan, 8) as f64);
        assert!(strassen.t_data.is_finite() && strassen.t_data > 0.0);
    }

    #[test]
    fn algo_field_defaults_to_classic_on_the_wire() {
        let spec: MemJobSpec =
            serde_json::from_str(r#"{"m":2,"n":2,"z":2,"q":4,"seed_a":1,"seed_b":2}"#).unwrap();
        assert_eq!(spec.algo, "classic");
        let round: MemJobSpec =
            serde_json::from_str(&serde_json::to_string(&mem_spec(1, 2, 3, 4)).unwrap()).unwrap();
        assert_eq!(round, mem_spec(1, 2, 3, 4));
    }

    #[test]
    fn admission_rejects_over_budget_with_the_predicted_footprint() {
        let machine = MachineConfig::quad_q32();
        let sched = Scheduler::new(1 << 20, 2, machine.clone(), 1.0);
        let price = price_mem(&mem_spec(64, 64, 64, 32), &machine).unwrap();
        assert!(price.footprint_bytes > sched.ram_budget_bytes);
        let rej = sched.submit(JobSpec::Mem(mem_spec(64, 64, 64, 32)), price.clone()).unwrap_err();
        assert_eq!(rej.predicted_footprint_bytes, Some(price.footprint_bytes));
        assert_eq!(rej.ram_budget_bytes, 1 << 20);
        assert!(rej.error.contains("exceeds"));
        assert_eq!(sched.stats().counts.rejected, 1);
    }

    #[test]
    fn first_fit_packs_small_jobs_past_a_blocked_big_one() {
        let machine = MachineConfig::quad_q32();
        let sched = Scheduler::new(1000, 4, machine, 1.0);
        let price =
            |fp: u64| JobPrice { flops: 1.0, t_data: 1.0, footprint_bytes: fp, staging: None };
        let spec = JobSpec::Mem(mem_spec(1, 1, 1, 2));
        let (big, _) = sched.submit(spec.clone(), price(900)).unwrap();
        let (small, _) = sched.submit(spec.clone(), price(300)).unwrap();
        // Big job reserves 900 of 1000.
        let (id1, _, _, _) = sched.next_runnable().unwrap();
        assert_eq!(id1, big);
        // 100 free: the 300-byte job must wait…
        let (tiny, _) = sched.submit(spec.clone(), price(50)).unwrap();
        // …but the 50-byte job behind it fits now — first-fit skips the
        // blocked head of the queue.
        let (id2, _, _, _) = sched.next_runnable().unwrap();
        assert_eq!(id2, tiny);
        assert_eq!(sched.stats().ram_in_use_bytes, 950);
        sched.finish(big, JobState::Cancelled);
        let (id3, _, _, _) = sched.next_runnable().unwrap();
        assert_eq!(id3, small);
        assert_eq!(sched.ram_peak_bytes(), 950);
    }

    #[test]
    fn cancel_dequeues_queued_jobs_and_trips_running_tokens() {
        let machine = MachineConfig::quad_q32();
        let sched = Scheduler::new(1000, 4, machine, 1.0);
        let price = JobPrice { flops: 1.0, t_data: 1.0, footprint_bytes: 10, staging: None };
        let spec = JobSpec::Mem(mem_spec(1, 1, 1, 2));
        let (a, _) = sched.submit(spec.clone(), price.clone()).unwrap();
        let (b, _) = sched.submit(spec, price).unwrap();
        assert_eq!(sched.cancel(a), Some("cancelled"));
        assert!(matches!(sched.status(a).unwrap().0, JobState::Cancelled));
        let (id, _, _, token) = sched.next_runnable().unwrap();
        assert_eq!(id, b, "cancelled job never dispatches");
        assert_eq!(sched.cancel(b), Some("cancelling"));
        assert!(token.is_cancelled(), "running job's token tripped");
        sched.finish(b, JobState::Cancelled);
        assert!(sched.status(b).unwrap().0.is_terminal());
        assert_eq!(sched.cancel(999), None);
    }
}
