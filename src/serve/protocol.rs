//! Wire protocol of the serve daemon: line-delimited JSON over TCP.
//!
//! Each request is one JSON object on one line, dispatched on its
//! `"cmd"` field; each response is one JSON object on one line with an
//! `"ok"` boolean. The same port also answers plain `GET /metrics`
//! HTTP requests (sniffed from the first line) with the Prometheus
//! exposition of the global metrics registry, so a scraper needs no
//! separate endpoint.
//!
//! ```text
//! {"cmd":"submit","kind":"mem","m":8,"n":8,"z":8,"q":32,"seed_a":1,"seed_b":2}
//! {"ok":true,"job_id":1,"price":{...}}
//! {"cmd":"submit","kind":"mem","m":16,"n":16,"z":16,"q":8,"algo":"strassen"}
//! {"ok":true,"job_id":2,"price":{...}}
//! {"cmd":"wait","job_id":1}
//! {"ok":true,"job_id":1,"state":"done","report":{...}}
//! ```

use serde::Value;

use super::scheduler::{MemJobSpec, OocJobSpec};

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit an in-memory multiply.
    SubmitMem(MemJobSpec),
    /// Submit an out-of-core multiply over `.tiled` files.
    SubmitOoc(OocJobSpec),
    /// Report a job's current state without blocking.
    Status(u64),
    /// Block until a job reaches a terminal state, then report it.
    Wait(u64),
    /// Cancel a queued or running job.
    Cancel(u64),
    /// Snapshot the scheduler (budget, in-use, peak, counters).
    Stats,
    /// Return the Prometheus exposition as a JSON string field.
    Metrics,
    /// Stop admitting, cancel outstanding work, and exit.
    Shutdown,
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Value::as_u64).ok_or_else(|| format!("missing or invalid \"{key}\""))
}

fn str_field<'v>(v: &'v Value, key: &str) -> Result<&'v str, String> {
    v.get(key).and_then(Value::as_str).ok_or_else(|| format!("missing or invalid \"{key}\""))
}

fn job_id(v: &Value) -> Result<u64, String> {
    u64_field(v, "job_id")
}

/// Parse one request line. Errors are human-readable and go straight
/// back to the client in an `{"ok":false,"error":...}` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v: Value =
        serde_json::from_str(line.trim()).map_err(|e| format!("request is not valid JSON: {e}"))?;
    let cmd = str_field(&v, "cmd")?;
    match cmd {
        "submit" => match str_field(&v, "kind")? {
            "mem" => {
                let algo = v.get("algo").and_then(Value::as_str).unwrap_or("classic");
                if algo != "classic" && algo != "strassen" {
                    return Err(format!(
                        "unknown algo \"{algo}\" (expected \"classic\" or \"strassen\")"
                    ));
                }
                Ok(Request::SubmitMem(MemJobSpec {
                    m: u64_field(&v, "m")? as u32,
                    n: u64_field(&v, "n")? as u32,
                    z: u64_field(&v, "z")? as u32,
                    q: u64_field(&v, "q")? as usize,
                    seed_a: u64_field(&v, "seed_a").unwrap_or(1),
                    seed_b: u64_field(&v, "seed_b").unwrap_or(2),
                    algo: algo.to_string(),
                }))
            }
            "ooc" => Ok(Request::SubmitOoc(OocJobSpec {
                a: str_field(&v, "a")?.to_string(),
                b: str_field(&v, "b")?.to_string(),
                out: str_field(&v, "out")?.to_string(),
                mem_budget_bytes: u64_field(&v, "mem_budget_bytes")?,
                io_threads: v.get("io_threads").and_then(Value::as_u64).unwrap_or(2) as usize,
            })),
            other => Err(format!("unknown submit kind \"{other}\" (expected \"mem\" or \"ooc\")")),
        },
        "status" => Ok(Request::Status(job_id(&v)?)),
        "wait" => Ok(Request::Wait(job_id(&v)?)),
        "cancel" => Ok(Request::Cancel(job_id(&v)?)),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown cmd \"{other}\"")),
    }
}

/// Serialize any `Serialize` value to one response line (no trailing
/// newline; the connection loop appends it).
pub fn response_line<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_else(|e| {
        format!("{{\"ok\":false,\"error\":\"response serialization failed: {e}\"}}")
    })
}

/// The `{"ok":false,...}` error response.
pub fn error_line(error: &str) -> String {
    let mut out = String::from("{\"ok\":false,\"error\":");
    out.push_str(&serde_json::to_string(&error.to_string()).unwrap_or_else(|_| "\"?\"".into()));
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_command() {
        let r = parse_request(
            r#"{"cmd":"submit","kind":"mem","m":3,"n":4,"z":5,"q":8,"seed_a":7,"seed_b":9}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            Request::SubmitMem(MemJobSpec {
                m: 3,
                n: 4,
                z: 5,
                q: 8,
                seed_a: 7,
                seed_b: 9,
                algo: "classic".into(),
            })
        );
        let r = parse_request(
            r#"{"cmd":"submit","kind":"mem","m":3,"n":3,"z":3,"q":4,"algo":"strassen"}"#,
        )
        .unwrap();
        match r {
            Request::SubmitMem(spec) => assert_eq!(spec.algo, "strassen"),
            other => panic!("expected mem submit, got {other:?}"),
        }
        let r = parse_request(
            r#"{"cmd":"submit","kind":"ooc","a":"/t/a","b":"/t/b","out":"/t/c","mem_budget_bytes":65536}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            Request::SubmitOoc(OocJobSpec {
                a: "/t/a".into(),
                b: "/t/b".into(),
                out: "/t/c".into(),
                mem_budget_bytes: 65536,
                io_threads: 2,
            })
        );
        assert_eq!(parse_request(r#"{"cmd":"status","job_id":4}"#).unwrap(), Request::Status(4));
        assert_eq!(parse_request(r#"{"cmd":"wait","job_id":4}"#).unwrap(), Request::Wait(4));
        assert_eq!(parse_request(r#"{"cmd":"cancel","job_id":4}"#).unwrap(), Request::Cancel(4));
        assert_eq!(parse_request(r#"{"cmd":"stats"}"#).unwrap(), Request::Stats);
        assert_eq!(parse_request(r#"{"cmd":"metrics"}"#).unwrap(), Request::Metrics);
        assert_eq!(parse_request(r#"{"cmd":"shutdown"}"#).unwrap(), Request::Shutdown);
    }

    #[test]
    fn rejects_malformed_requests_with_readable_errors() {
        assert!(parse_request("not json").unwrap_err().contains("not valid JSON"));
        assert!(parse_request(r#"{"cmd":"fly"}"#).unwrap_err().contains("unknown cmd"));
        assert!(parse_request(r#"{"cmd":"submit","kind":"gpu"}"#)
            .unwrap_err()
            .contains("unknown submit kind"));
        assert!(parse_request(r#"{"cmd":"submit","kind":"mem","m":3}"#)
            .unwrap_err()
            .contains("\"n\""));
        assert!(parse_request(
            r#"{"cmd":"submit","kind":"mem","m":3,"n":3,"z":3,"q":4,"algo":"karatsuba"}"#
        )
        .unwrap_err()
        .contains("unknown algo"));
        assert!(parse_request(r#"{"cmd":"wait"}"#).unwrap_err().contains("job_id"));
        let err = error_line("boom \"quoted\"");
        assert!(err.starts_with("{\"ok\":false,\"error\":"), "{err}");
        let v: Value = serde_json::from_str(&err).unwrap();
        assert_eq!(v.get("error").and_then(Value::as_str), Some("boom \"quoted\""));
    }
}
