//! # multicore-matmul
//!
//! A full Rust reproduction of
//!
//! > Mathias Jacquelin, Loris Marchal, Yves Robert,
//! > *Complexity analysis and performance evaluation of matrix product on
//! > multicore architectures*, LIP RRLIP2009-09 / ICPP 2009
//! > (HAL `ensl-00381458`).
//!
//! This facade crate re-exports the three library layers:
//!
//! * [`sim`] (`mmc-sim`) — the two-level (shared + distributed) multicore
//!   cache-hierarchy simulator with LRU and IDEAL replacement policies;
//! * [`core`] (`mmc-core`) — the paper's algorithms (Shared Opt,
//!   Distributed Opt, Tradeoff) and baselines (Outer Product, Shared /
//!   Distributed Equal), plus tile-parameter selection, lower bounds and
//!   closed-form miss predictions;
//! * [`exec`] (`mmc-exec`) — block-matrix storage, the `q×q` micro-kernel
//!   and rayon-parallel executors that run the same schedules on real
//!   data;
//! * [`strassen`] (`mmc-strassen`) — Strassen–Winograd recursive GEMM
//!   over Morton-ordered blocks: sub-cubic `7^d` leaf products handed to
//!   the packed 5-loop kernels below a tunable cutoff, with pooled,
//!   bounded workspace and a cost-model-predicted crossover;
//! * [`ooc`] (`mmc-ooc`) — out-of-core streaming GEMM over block-major
//!   tiled files, with a bounded double-buffered prefetch pipeline and a
//!   three-level `T_data` report;
//! * [`obs`] (`mmc-obs`) — the observability substrate: a lock-free
//!   metrics registry, raw `perf_event_open` hardware-counter sampling
//!   with graceful fallback, roofline records that put the paper's
//!   predicted `M_S`/`T_data` next to measured LLC misses, per-job span
//!   tracing through lock-free per-thread rings, and
//!   predicted-vs-measured drift reports over the traced phases.
//!
//! On top of those it adds [`serve`] — the `mmc serve` daemon: a
//! std-only TCP server that prices every submitted multiply with the
//! paper's model (`T_data`, predicted FLOPs, peak resident bytes) and
//! packs compatible jobs onto a shared worker pool under a RAM budget,
//! with cooperative cancellation and per-job drift reports.
//!
//! See `examples/quickstart.rs` for a guided tour, and the `mmc-bench`
//! crate for the harness that regenerates every figure of the paper.
//!
//! ```
//! use multicore_matmul::prelude::*;
//!
//! // Simulate Algorithm 1 on the paper's quad-core q=32 preset and check
//! // the shared-miss count against the paper's closed form mn + 2mnz/λ.
//! let machine = MachineConfig::quad_q32();
//! let problem = ProblemSpec::square(60);
//! let mut sim = Simulator::new(SimConfig::ideal(&machine), 60, 60, 60);
//! SharedOpt.execute(&machine, &problem, &mut sim).unwrap();
//! assert_eq!(sim.stats().ms(), 60 * 60 + 2 * 60 * 60 * 60 / 30);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use mmc_core as core;
pub use mmc_exec as exec;
pub use mmc_lu as lu;
pub use mmc_obs as obs;
pub use mmc_ooc as ooc;
pub use mmc_sim as sim;
pub use mmc_strassen as strassen;

pub mod serve;

/// The names most programs need, in one `use`.
pub mod prelude {
    pub use mmc_core::algorithms::{
        all_algorithms, AlgoError, Algorithm, AlgorithmKind, CacheOblivious, DistributedEqual,
        DistributedOpt, HierarchicalMaxReuse, OuterProduct, SharedEqual, SharedOpt, Tradeoff,
    };
    pub use mmc_core::{
        bounds, formulas, params, CoreGrid, Prediction, ProblemSpec, TradeoffParams,
    };
    pub use mmc_exec::{
        exec_drift, gemm_naive, gemm_parallel, gemm_parallel_traced, gemm_parallel_with_kernel,
        gemm_parallel_with_plan, run_schedule, run_traced, spans_to_chrome, task_spans,
        task_spans_to_chrome, BlockMatrix, BlockMatrixOf, BlockingPlan, ExecModel, ExecSink,
        KernelVariant, TaskSpan, Tiling, TracedRun,
    };
    pub use mmc_obs::{
        CounterReading, DriftReport, PerfCounters, PhaseDrift, Registry, RegistrySnapshot,
        RooflineRecord, SpanKind, SpanRecord, SCHEMA_VERSION,
    };
    pub use mmc_ooc::{
        ooc_drift, ooc_multiply, ooc_verify, write_pseudo_random, OocOpts, OocReport,
    };
    pub use mmc_sim::{
        choose_algorithm, five_loop_traffic, predicted_crossover, AlgoChoice, Block, BlockSpace,
        ChromeGranularity, ChromeTraceBuilder, CostEnv, CountingSink, EventKind, FileLevel,
        FiveLoopTraffic, FlightRecorder, MachineConfig, MatrixId, MetricsSnapshot, Policy,
        SimConfig, SimError, SimSink, SimStats, Simulator, StrassenPlan, TData3, TimingModel,
        TraceSink,
    };
    pub use mmc_strassen::{
        strassen_multiply, strassen_multiply_cancellable, StrassenOpts, StrassenReport,
        DEFAULT_CUTOFF,
    };
}
